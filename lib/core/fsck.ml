(* Offline arena verifier and repairer.

   [Validate] answers "is this arena consistent?"; this module makes it so
   again after device-level damage that crash recovery alone cannot undo —
   torn object headers, values swallowed by stuck media, wild pointers into
   pages whose metadata no longer parses. It assumes the pool is quiesced
   (no live clients, fault injection disarmed) and works in passes, each
   idempotent, from raw structure up to the reference graph:

     0. segment metadata sanity (state / occupied in range)
     1. page geometry: a page whose kind/block_words/capacity disagree is
        quarantined — metadata zeroed, kind set to [Config.kind_quarantined]
        so allocation, validation and reclaim all skip the frame; torn
        object headers (ref_cnt > 0 but implausible meta) are cleared
     2. a crash-recovery sweep of every recorded client, exactly as
        [Shm.load] does — half-done transactions resolve here
     3. mark from the durable roots (RootRefs, queue directory, named
        roots): wild references are cleared at their holder, unreachable
        ref_cnt > 0 objects are freed, and every reachable object's count
        is rewritten to its actual number of holders
     4. free-structure rebuild: per-page free chains are reconstructed from
        block liveness, cross-client free stacks and redo logs are zeroed,
        orphaned huge-continuation segments are released
     5. POTENTIAL_LEAKING scan, then a final [Validate.run]

   Repair is deliberately lossy where the damage is lossy: a torn header
   cannot be un-torn, so the block is either resurrected with its holder
   count or freed; fsck restores the arena's invariants, not its data. *)

module Mem = Cxlshm_shmem.Mem
module Word = Cxlshm_shmem.Word

type report = {
  seg_meta_fixed : int;  (** out-of-range segment state/owner words reset *)
  pages_quarantined : int;
  page_meta_fixed : int;  (** stale metadata of unused pages normalised *)
  torn_headers_cleared : int;
  clients_swept : int;  (** recorded clients put through crash recovery *)
  sweep_errors : int;  (** recovery attempts that raised (state too damaged) *)
  wild_refs_cleared : int;
  unreachable_freed : int;
  counts_fixed : int;
  chains_rebuilt : int;  (** pages whose free chain had to be reconstructed *)
  stacks_cleared : int;  (** non-empty cross-client free stacks zeroed *)
  trace_rings_reset : int;  (** event rings zeroed (bad cursor / torn slot) *)
  adopt_fixed : int;
      (** adoption-journal / park-registry entries cleared (dangling
          rootref, stale claim, duplicate, or registry residue of a freed
          client slot) *)
  validation : Validate.t;  (** final post-repair verdict *)
}

let clean r = Validate.is_clean r.validation

let pp ppf r =
  Format.fprintf ppf
    "seg-meta=%d quarantined=%d page-meta=%d torn=%d swept=%d(sweep-errs=%d) \
     wild=%d freed=%d counts=%d chains=%d stacks=%d rings=%d adopt=%d | %a"
    r.seg_meta_fixed r.pages_quarantined r.page_meta_fixed
    r.torn_headers_cleared r.clients_swept r.sweep_errors r.wild_refs_cleared
    r.unreachable_freed r.counts_fixed r.chains_rebuilt r.stacks_cleared
    r.trace_rings_reset r.adopt_fixed Validate.pp r.validation

let check mem lay = Validate.run mem lay

(* ------------------------------------------------------------------ *)

type acc = {
  mutable segf : int;
  mutable quar : int;
  mutable pmeta : int;
  mutable torn : int;
  mutable swept : int;
  mutable swerr : int;
  mutable wild : int;
  mutable freed : int;
  mutable counts : int;
  mutable chains : int;
  mutable stacks : int;
  mutable rings : int;
  mutable adopt : int;
}

let repair (ctx : Ctx.t) =
  let mem = ctx.Ctx.mem and lay = ctx.Ctx.lay in
  let cfg = lay.Layout.cfg in
  (* Offline servicing: no faults fire while fsck runs (the damage they
     already did is exactly what we are here to fix). *)
  Mem.set_fault_injection mem false;
  let peek = Mem.unsafe_peek mem and poke = Mem.unsafe_poke mem in
  let a =
    { segf = 0; quar = 0; pmeta = 0; torn = 0; swept = 0; swerr = 0; wild = 0;
      freed = 0; counts = 0; chains = 0; stacks = 0; rings = 0; adopt = 0 }
  in
  let ns = cfg.Config.num_segments and pps = cfg.Config.pages_per_segment in
  let rr_kind = Config.kind_rootref cfg in
  let huge_kind = Config.kind_huge cfg in
  let q_kind = Config.kind_quarantined cfg in
  let seg_state s = peek (Layout.seg_state lay s) in
  let page_kind gid = peek (Layout.page_kind lay ~gid) in
  let huge_head s = seg_state s = 4 || page_kind (Layout.page_gid lay ~seg:s ~page:0) = huge_kind in
  let huge_seg s = huge_head s || seg_state s = 5 in
  let huge_obj s = Layout.segment_base lay s + lay.Layout.seg_hdr_words in

  (* ---- pass 0: segment metadata sanity ---- *)
  for s = 0 to ns - 1 do
    let st = seg_state s in
    if st < 0 || st > 5 then begin
      (* unknown state: pessimistically POTENTIAL_LEAKING so the scan of
         pass 5 walks the segment's blocks *)
      poke (Layout.seg_state lay s) 3;
      a.segf <- a.segf + 1
    end;
    let occ = peek (Layout.seg_occupied lay s) in
    if occ < 0 || occ > cfg.Config.max_clients then begin
      poke (Layout.seg_occupied lay s) 0;
      a.segf <- a.segf + 1
    end
  done;

  (* ---- pass 1: page geometry and torn headers ---- *)
  let zero_page_meta gid =
    poke (Layout.page_free lay ~gid) 0;
    poke (Layout.page_used lay ~gid) 0;
    poke (Layout.page_capacity lay ~gid) 0;
    poke (Layout.page_block_words lay ~gid) 0;
    poke (Layout.page_aux lay ~gid) 0;
    poke (Layout.page_aux2 lay ~gid) 0
  in
  let quarantine gid =
    zero_page_meta gid;
    poke (Layout.page_kind lay ~gid) q_kind;
    a.quar <- a.quar + 1
  in
  (* An in-use header whose meta word cannot describe an object of this
     page's class is torn: clear it to "free block, empty meta" — the
     mark pass then either resurrects it (it still has holders) or the
     chain rebuild absorbs it. *)
  let plausible_meta ~kind ~bw meta =
    let dw = Obj_header.meta_data_words meta in
    Obj_header.meta_kind meta = kind
    && Obj_header.meta_emb_cnt meta <= dw
    && dw >= 1
    && Config.header_words + dw <= bw
  in
  let empty_meta ~kind ~bw =
    Obj_header.pack_meta ~kind ~emb_cnt:0
      ~data_words:(bw - Config.header_words)
  in
  for s = 0 to ns - 1 do
    if not (huge_seg s) then
      for p = 0 to pps - 1 do
        let gid = Layout.page_gid lay ~seg:s ~page:p in
        let k = page_kind gid in
        let bw = peek (Layout.page_block_words lay ~gid) in
        let cap = peek (Layout.page_capacity lay ~gid) in
        if k = Config.kind_unused || k = q_kind then begin
          if bw <> 0 || cap <> 0 || peek (Layout.page_free lay ~gid) <> 0
          then begin
            (* torn Page.init/reset: kind is published last, so a non-zero
               remainder under an unused kind is half-written garbage *)
            zero_page_meta gid;
            a.pmeta <- a.pmeta + 1
          end
        end
        else begin
          let expect_bw =
            if k = rr_kind then Some Config.rootref_words
            else
              match Config.class_of_kind cfg k with
              | Some c -> Some (Config.class_block_words cfg c)
              | None -> None (* huge kind outside a huge segment, or junk *)
          in
          match expect_bw with
          | None -> quarantine gid
          | Some ebw ->
              if bw <> ebw || cap <> cfg.Config.page_words / ebw then
                quarantine gid
              else if k <> rr_kind then begin
                let base = Layout.page_area lay ~gid in
                for i = 0 to cap - 1 do
                  let b = base + (i * bw) in
                  if Obj_header.ref_cnt_of (peek b) > 0
                     && not (plausible_meta ~kind:k ~bw (peek (b + 1)))
                  then begin
                    poke b 0;
                    poke (b + 1) (empty_meta ~kind:k ~bw);
                    a.torn <- a.torn + 1
                  end
                done
              end
              else begin
                (* RootRef state words only carry {in_use, local_cnt};
                   stray bits mean a torn store landed *)
                let base = Layout.page_area lay ~gid in
                for i = 0 to cap - 1 do
                  let b = base + (i * bw) in
                  if
                    Rootref.peek_in_use mem b
                    && not (Rootref.well_formed (peek b))
                  then begin
                    poke b 0;
                    poke (b + 1) 0;
                    a.torn <- a.torn + 1
                  end
                done
              end
        end
      done
    else if huge_head s then begin
      let obj = huge_obj s in
      if Obj_header.ref_cnt_of (peek obj) > 0
         && Obj_header.meta_kind (peek (Obj_header.meta_of_obj obj))
            <> huge_kind
      then begin
        poke obj 0;
        (* left at count 0: the mark pass frees the whole run *)
        a.torn <- a.torn + 1
      end;
      (* Cross-check the head page's span and true-length words against the
         run the segment states actually describe. [span] counts the head
         plus its consecutive Huge_cont segments — a run half-released by a
         crashed [free_huge] shrinks here, so the span word is re-anchored
         to what is still claimable — and the true length (page_aux2) must
         fit span × segment_words and agree with the packed meta field
         whenever that field is wide enough to hold it. *)
      let gid0 = Layout.page_gid lay ~seg:s ~page:0 in
      let rec count k =
        if s + k < ns && seg_state (s + k) = 5 then count (k + 1) else k
      in
      let span = count 1 in
      if peek (Layout.page_aux lay ~gid:gid0) <> span then begin
        poke (Layout.page_aux lay ~gid:gid0) span;
        a.pmeta <- a.pmeta + 1
      end;
      let max_dw =
        lay.Layout.segment_words - lay.Layout.seg_hdr_words
        + ((span - 1) * lay.Layout.segment_words)
        - Config.header_words
      in
      let meta_dw =
        Obj_header.meta_data_words (peek (Obj_header.meta_of_obj obj))
      in
      let truth = peek (Layout.page_aux2 lay ~gid:gid0) in
      let truth_ok =
        truth >= 1 && truth <= max_dw
        && (truth = meta_dw
           || (meta_dw = Obj_header.max_meta_data_words && truth >= meta_dw))
      in
      if not truth_ok then begin
        poke (Layout.page_aux2 lay ~gid:gid0)
          (if meta_dw >= 1 && meta_dw <= max_dw then meta_dw else max_dw);
        a.pmeta <- a.pmeta + 1
      end
    end
  done;

  (* ---- pass 1.5: trace-ring integrity ----
     Checked before the recovery sweep because the sweep itself may append
     events (the service context traces its recovery spans). A ring with a
     negative cursor or an undecodable published slot has been hit by the
     same damage the other passes repair; the events are forensics, not
     invariants, so the whole ring is simply zeroed. *)
  let slots = cfg.Config.trace_slots in
  for cid = 0 to cfg.Config.max_clients - 1 do
    let cur = peek (Layout.trace_cursor lay cid) in
    let window = if cur < 0 then 0 else min cur slots in
    let bad = ref (cur < 0) in
    for k = 0 to window - 1 do
      let n = cur - 1 - k in
      let slot = Layout.trace_slot lay cid (n mod slots) in
      let tag = peek slot in
      if
        tag < 0
        || tag >= Cxlshm_shmem.Histogram.num_ops * 4
        || tag land 3 > 2
        || peek (slot + 3) < 0
        || peek (slot + 4) < 0
      then bad := true
    done;
    if !bad then begin
      poke (Layout.trace_cursor lay cid) 0;
      for k = 0 to slots - 1 do
        let slot = Layout.trace_slot lay cid k in
        for w = 0 to Layout.trace_slot_words - 1 do
          poke (slot + w) 0
        done
      done;
      a.rings <- a.rings + 1
    end
  done;

  (* ---- pass 2: crash-recovery sweep of every recorded client ---- *)
  let force_unlock () =
    poke (Layout.recovery_lock lay) 0;
    poke (Layout.recovery_failed lay) 0;
    poke (Layout.recovery_phase lay) 0
  in
  (try ignore (Recovery.resume_interrupted ctx)
   with _ ->
     a.swerr <- a.swerr + 1;
     force_unlock ());
  for cid = 0 to cfg.Config.max_clients - 1 do
    if Client.status ctx ~cid <> Client.Slot_free then begin
      Client.declare_failed ctx ~cid;
      try
        ignore (Recovery.recover ctx ~failed_cid:cid);
        a.swept <- a.swept + 1
      with _ ->
        (* recovery choked on damage it was never designed for; the later
           structural passes still run, so just make the client slot and
           the lock sane and move on *)
        a.swerr <- a.swerr + 1;
        Client.mark_recovered ctx ~cid;
        force_unlock ()
    end
  done;

  (* ---- pass 2.7: adoption journal and park registries ----
     The sweep above recovered every recorded client, which moved each
     parked-record registry into the adoption journal; any registry
     residue left now is damage, as is a journal entry whose rootref no
     longer lives, a claim naming a freed client, or a duplicated rr.
     Valid journal entries are preserved — their rootrefs keep the parked
     records alive through the mark pass and a future successor can still
     adopt them. *)
  let rootref_ok rr =
    rr > 0 && rr < lay.Layout.total_words
    && (match Layout.page_gid_of_addr lay rr with
       | exception Invalid_argument _ -> false
       | gid ->
           page_kind gid = rr_kind
           && (rr - Layout.page_area lay ~gid) mod Config.rootref_words = 0)
  in
  for cid = 0 to cfg.Config.max_clients - 1 do
    if Client.status ctx ~cid = Client.Slot_free then
      for k = 0 to Layout.park_capacity lay - 1 do
        if
          peek (Layout.park_slot_rr lay cid k) <> 0
          || peek (Layout.park_slot_stamp lay cid k) <> 0
        then begin
          poke (Layout.park_slot_rr lay cid k) 0;
          poke (Layout.park_slot_stamp lay cid k) 0;
          a.adopt <- a.adopt + 1
        end
      done
  done;
  let journaled : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to Layout.adopt_capacity lay - 1 do
    let rr_slot = Layout.adopt_slot_rr lay i in
    let claim_slot = Layout.adopt_slot_claim lay i in
    let clear_slot () =
      poke rr_slot 0;
      poke (Layout.adopt_slot_stamp lay i) 0;
      poke claim_slot 0;
      a.adopt <- a.adopt + 1
    in
    let rr = peek rr_slot in
    if rr <> 0 then begin
      if
        not
          (rootref_ok rr
          && Rootref.peek_in_use mem rr
          && Rootref.peek_obj mem rr <> 0)
        || Hashtbl.mem journaled rr
      then clear_slot ()
      else Hashtbl.replace journaled rr ()
    end
    else if peek (Layout.adopt_slot_stamp lay i) <> 0 || peek claim_slot <> 0
    then clear_slot ();
    let claim = peek claim_slot in
    if
      claim <> 0
      && (claim < 0
         || claim > cfg.Config.max_clients
         || Client.status ctx ~cid:(claim - 1) = Client.Slot_free)
    then begin
      poke claim_slot 0;
      a.adopt <- a.adopt + 1
    end
  done;

  (* ---- pass 3: mark from durable roots ---- *)
  let block_base_ok p =
    if p <= 0 || p >= lay.Layout.total_words then false
    else
      match Layout.segment_of_addr lay p with
      | exception Invalid_argument _ -> false
      | seg ->
          if huge_seg seg then p = huge_obj seg
          else (
            match Layout.page_gid_of_addr lay p with
            | exception Invalid_argument _ -> false
            | gid ->
                let bw = peek (Layout.page_block_words lay ~gid) in
                let base = Layout.page_area lay ~gid in
                let k = page_kind gid in
                k <> Config.kind_unused && k <> rr_kind && k <> q_kind
                && bw > 0
                && (p - base) mod bw = 0
                && (p - base) / bw < peek (Layout.page_capacity lay ~gid))
  in
  let expected : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let work = Queue.create () in
  let add_ref obj =
    let seen = try Hashtbl.find expected obj with Not_found -> 0 in
    Hashtbl.replace expected obj (seen + 1);
    if seen = 0 then Queue.push obj work
  in
  (* RootRefs pointing at valid blocks are holders; wild ones are cleared.
     (A dead client's RootRefs were already dropped by the recovery sweep;
     what is left is either a ghost we keep as a holder — harmless — or
     damage we clear here.) *)
  for s = 0 to ns - 1 do
    if not (huge_seg s) then
      for p = 0 to pps - 1 do
        let gid = Layout.page_gid lay ~seg:s ~page:p in
        if page_kind gid = rr_kind then begin
          let bw = peek (Layout.page_block_words lay ~gid) in
          let cap = peek (Layout.page_capacity lay ~gid) in
          let base = Layout.page_area lay ~gid in
          for i = 0 to cap - 1 do
            let rr = base + (i * bw) in
            if Rootref.peek_in_use mem rr then begin
              let obj = Rootref.peek_obj mem rr in
              if obj <> 0 then
                if block_base_ok obj then add_ref obj
                else begin
                  poke rr 0;
                  poke (rr + 1) 0;
                  a.wild <- a.wild + 1
                end
            end
          done
        end
      done
  done;
  a.wild <-
    a.wild + Transfer.clear_wild_directory_refs mem lay ~valid:block_base_ok;
  a.wild <-
    a.wild + Named_roots.clear_wild_directory_refs mem lay ~valid:block_base_ok;
  List.iter add_ref (Transfer.directory_refs mem lay);
  List.iter add_ref (Named_roots.directory_refs mem lay);
  while not (Queue.is_empty work) do
    let obj = Queue.pop work in
    let meta = peek (Obj_header.meta_of_obj obj) in
    for i = 0 to Obj_header.meta_emb_cnt meta - 1 do
      let child = peek (Obj_header.emb_slot obj i) in
      if child <> 0 then
        if block_base_ok child then add_ref child
        else begin
          poke (Obj_header.emb_slot obj i) 0;
          a.wild <- a.wild + 1
        end
    done
  done;
  (* Sweep: unreachable counted objects are freed, reachable ones get their
     count rewritten to the number of holders actually found. lcid/lera are
     reset to "never touched" — every transaction was resolved in pass 2. *)
  let fix_count b =
    let exp = try Hashtbl.find expected b with Not_found -> 0 in
    let hdr = peek b in
    let want =
      Obj_header.pack { Obj_header.lcid = None; lera = 0; ref_cnt = exp }
    in
    if hdr <> want then begin
      poke b want;
      if Obj_header.ref_cnt_of hdr <> exp then a.counts <- a.counts + 1
    end
  in
  let release_huge_run head =
    (* trust segment states, not the (possibly stuck) aux span word *)
    let rec span k = if head + k < ns && seg_state (head + k) = 5 then span (k + 1) else k in
    let n = span 1 in
    for p = 0 to pps - 1 do
      let gid = Layout.page_gid lay ~seg:head ~page:p in
      poke (Layout.page_kind lay ~gid) Config.kind_unused;
      zero_page_meta gid
    done;
    for k = n - 1 downto 0 do
      poke (Layout.seg_state lay (head + k)) 0;
      poke (Layout.seg_occupied lay (head + k)) 0
    done
  in
  for s = 0 to ns - 1 do
    if huge_head s then begin
      let obj = huge_obj s in
      if Hashtbl.mem expected obj then fix_count obj
      else begin
        if Obj_header.ref_cnt_of (peek obj) > 0 then a.freed <- a.freed + 1;
        release_huge_run s
      end
    end
    else if not (huge_seg s) then
      for p = 0 to pps - 1 do
        let gid = Layout.page_gid lay ~seg:s ~page:p in
        (match Config.class_of_kind cfg (page_kind gid) with
        | None -> ()
        | Some _ ->
            let bw = peek (Layout.page_block_words lay ~gid) in
            let cap = peek (Layout.page_capacity lay ~gid) in
            let base = Layout.page_area lay ~gid in
            for i = 0 to cap - 1 do
              let b = base + (i * bw) in
              if Hashtbl.mem expected b then fix_count b
              else if Obj_header.ref_cnt_of (peek b) > 0 then begin
                poke b 0;
                poke (b + 1) (empty_meta ~kind:(page_kind gid) ~bw);
                a.freed <- a.freed + 1
              end
            done)
      done
  done;
  (* a released huge run may leave cont segments whose head was damaged
     away; release them too (ascending order heals chains) *)
  for s = 0 to ns - 1 do
    if seg_state s = 5 && (s = 0 || not (huge_seg (s - 1))) then begin
      poke (Layout.seg_state lay s) 0;
      poke (Layout.seg_occupied lay s) 0;
      a.segf <- a.segf + 1
    end
  done;

  (* ---- pass 4: rebuild free structures from liveness ---- *)
  for s = 0 to ns - 1 do
    if peek (Layout.seg_client_free lay s) <> 0 then begin
      poke (Layout.seg_client_free lay s) 0;
      a.stacks <- a.stacks + 1
    end
  done;
  (* Domain shard stacks are rebuilt the same way as the cross-client
     stacks: drop them wholesale — every dead block re-enters its page
     chain below, and the stamps that made parked entries stealable are
     cleared there too, so nothing keeps pinning segments. *)
  for d = 0 to cfg.Config.num_domains - 1 do
    for c = 0 to Config.num_classes cfg - 1 do
      if peek (Layout.domain_class_head lay d c) <> 0 then begin
        poke (Layout.domain_class_head lay d c) 0;
        a.stacks <- a.stacks + 1
      end
    done
  done;
  for s = 0 to ns - 1 do
    if not (huge_seg s) then
      for p = 0 to pps - 1 do
        let gid = Layout.page_gid lay ~seg:s ~page:p in
        let k = page_kind gid in
        let is_rr = k = rr_kind in
        if is_rr || Config.class_of_kind cfg k <> None then begin
          let bw = peek (Layout.page_block_words lay ~gid) in
          let cap = peek (Layout.page_capacity lay ~gid) in
          let base = Layout.page_area lay ~gid in
          let off = Page.next_slot_offset ~kind_rootref:is_rr in
          let live b =
            if is_rr then Rootref.peek_in_use mem b
            else Obj_header.ref_cnt_of (peek b) > 0
          in
          let old_head = peek (Layout.page_free lay ~gid) in
          let old_used = peek (Layout.page_used lay ~gid) in
          let head = ref 0 and nfree = ref 0 in
          for i = cap - 1 downto 0 do
            let b = base + (i * bw) in
            if not (live b) then begin
              poke b 0;
              if not is_rr then begin
                poke (b + 1) 0;
                (* A stale shard stamp on a dead block would pin the
                   segment against the §5.3 scan forever. *)
                poke (Shard.stamp_slot b) 0
              end;
              poke (b + off) !head;
              head := b;
              incr nfree
            end
          done;
          poke (Layout.page_free lay ~gid) !head;
          poke (Layout.page_used lay ~gid) (cap - !nfree);
          if old_head <> !head || old_used <> cap - !nfree then
            a.chains <- a.chains + 1
        end
      done
  done;
  for cid = 0 to cfg.Config.max_clients - 1 do
    Redo_log.clear_for ctx ~cid;
    (* Retirement journals refer to rootrefs the rebuild above may have
       freed; a sealed batch is meaningless after a full rebuild. *)
    poke (Layout.retire_count lay cid) 0
  done;
  force_unlock ();

  (* ---- pass 5: leak scan, then the verdict ---- *)
  (try ignore (Reclaim.scan_all ctx ~is_client_alive:(fun _ -> false))
   with _ -> a.swerr <- a.swerr + 1);
  {
    seg_meta_fixed = a.segf;
    pages_quarantined = a.quar;
    page_meta_fixed = a.pmeta;
    torn_headers_cleared = a.torn;
    clients_swept = a.swept;
    sweep_errors = a.swerr;
    wild_refs_cleared = a.wild;
    unreachable_freed = a.freed;
    counts_fixed = a.counts;
    chains_rebuilt = a.chains;
    stacks_cleared = a.stacks;
    trace_rings_reset = a.rings;
    adopt_fixed = a.adopt;
    validation = Validate.run mem lay;
  }
