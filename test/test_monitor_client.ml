(* Client lifecycle + lease-based failure monitor (§3.2). *)

open Cxlshm

(* lease_ttl = 1 reproduces the historical cadence: one full pass of
   tolerance, suspected on the second, condemned on the third. *)
let lease_cfg = { Config.small with Config.lease_ttl = 1 }

let test_register_limits () =
  let cfg = { Config.small with Config.max_clients = 3 } in
  let arena = Shm.create ~cfg () in
  let _a = Shm.join arena () in
  let _b = Shm.join arena () in
  let _c = Shm.join arena () in
  Alcotest.check_raises "no free slot" (Failure "Client.register: no free client slot")
    (fun () -> ignore (Shm.join arena ()))

let test_register_specific_cid () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena ~cid:3 () in
  Alcotest.(check int) "got requested cid" 3 a.Ctx.cid;
  Alcotest.check_raises "slot taken" (Failure "Client.register: no free client slot")
    (fun () -> ignore (Shm.join arena ~cid:3 ()))

let test_clean_exit_releases_segments () =
  let arena = Shm.create ~cfg:Config.small () in
  let before = Shm.free_segments arena in
  let a = Shm.join arena () in
  let r = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.drop r;
  Shm.leave a;
  Alcotest.(check int) "segments all returned" before (Shm.free_segments arena);
  (* the slot is reusable *)
  let a2 = Shm.join arena ~cid:a.Ctx.cid () in
  Shm.leave a2

let test_monitor_detects_silence () =
  let arena = Shm.create ~cfg:lease_cfg () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let _ = List.init 5 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  let mon = Shm.monitor arena () in
  (* b heartbeats, a goes silent *)
  Client.heartbeat a;
  Client.heartbeat b;
  Alcotest.(check (list int)) "nobody suspected yet" [] (Monitor.check_once mon);
  Client.heartbeat b;
  Alcotest.(check (list int)) "expiry only suspects" [] (Monitor.check_once mon);
  Alcotest.(check bool) "a suspected" true
    (Client.status b ~cid:a.Ctx.cid = Client.Suspected);
  Client.heartbeat b;
  Alcotest.(check (list int)) "a condemned after the grace pass" [ a.Ctx.cid ]
    (Monitor.check_once mon);
  Alcotest.(check bool) "a declared failed" true
    (Client.status b ~cid:a.Ctx.cid = Client.Failed);
  let reports = Monitor.recover_suspects mon in
  Alcotest.(check int) "one recovery ran" 1 (List.length reports);
  (match reports with
  | [ (cid, r) ] ->
      Alcotest.(check int) "recovered a" a.Ctx.cid cid;
      Alcotest.(check int) "reaped the rootrefs" 5 r.Recovery.rootrefs_released
  | _ -> Alcotest.fail "expected one report");
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena));
  Alcotest.(check bool) "b still alive" true (Client.is_alive b ~cid:b.Ctx.cid)

let test_suspected_then_renewed () =
  (* A late heartbeat cancels suspicion: the client was slow, not dead. *)
  let arena = Shm.create ~cfg:lease_cfg () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let mon = Shm.monitor arena () in
  Client.heartbeat a;
  Client.heartbeat b;
  ignore (Monitor.check_once mon);
  Client.heartbeat b;
  ignore (Monitor.check_once mon);
  Alcotest.(check bool) "a suspected" true
    (Client.status b ~cid:a.Ctx.cid = Client.Suspected);
  (* the renewal races the would-be condemnation and wins *)
  Client.heartbeat a;
  Alcotest.(check bool) "heartbeat self-heals" true
    (Client.status b ~cid:a.Ctx.cid = Client.Alive);
  Client.heartbeat b;
  Alcotest.(check (list int)) "nobody condemned" [] (Monitor.check_once mon);
  Alcotest.(check bool) "a still alive" true (Client.is_alive b ~cid:a.Ctx.cid);
  Alcotest.(check int) "no recovery ran" 0
    (List.length (Monitor.recover_suspects mon))

let test_hung_client_condemned () =
  (* A hung client keeps issuing arena operations but never heartbeats:
     leases catch it exactly like a silent death — the old per-monitor
     heartbeat-history scheme did too, but only from the monitor that
     watched the whole silence. *)
  let arena = Shm.create ~cfg:lease_cfg () in
  let a = Shm.join arena () in
  let mon = Shm.monitor arena () in
  ignore (Monitor.check_once mon);
  ignore (Shm.cxl_malloc a ~size_bytes:16 ());
  ignore (Monitor.check_once mon);
  (* still "working" while suspected — ops do not renew the lease *)
  ignore (Shm.cxl_malloc a ~size_bytes:16 ());
  Alcotest.(check (list int)) "condemned despite making progress" [ a.Ctx.cid ]
    (Monitor.check_once mon);
  ignore (Monitor.recover_suspects mon);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_fresh_replica_detects_immediately () =
  (* Absolute deadlines live in shared memory, so a replica spawned after
     the failure condemns on its first pass — no warm-up history. *)
  let arena = Shm.create ~cfg:lease_cfg () in
  let a = Shm.join arena () in
  let _ = List.init 2 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  let mon1 = Shm.monitor arena () in
  ignore (Monitor.check_once mon1);
  ignore (Monitor.check_once mon1);
  Alcotest.(check bool) "suspected by replica 0" true
    (Client.status (Shm.service_ctx arena) ~cid:a.Ctx.cid = Client.Suspected);
  let mon2 = Shm.monitor arena ~id:1 () in
  Alcotest.(check (list int)) "fresh replica condemns at once" [ a.Ctx.cid ]
    (Monitor.check_once mon2);
  Alcotest.(check int) "condemning replica captured the dump" 1
    (List.length (Monitor.death_dumps mon2));
  (* the other replica sees the same Failed slot but the incident is
     already claimed: exactly one capture across the fleet *)
  ignore (Monitor.check_once mon1);
  Alcotest.(check int) "no duplicate dump on replica 0" 0
    (List.length (Monitor.death_dumps mon1));
  Alcotest.(check int) "replica 1 recovers" 1
    (List.length (Monitor.recover_suspects mon2));
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_death_dump_once_per_incident () =
  let arena = Shm.create ~cfg:lease_cfg () in
  let svc = Shm.service_ctx arena in
  let a = Shm.join arena () in
  ignore (Shm.cxl_malloc a ~size_bytes:16 ());
  let mon = Shm.monitor arena () in
  Client.declare_failed svc ~cid:a.Ctx.cid;
  (* the same Failed slot observed on two passes dumps once *)
  ignore (Monitor.check_once mon);
  ignore (Monitor.check_once mon);
  Alcotest.(check int) "one dump for one incident" 1
    (List.length (Monitor.death_dumps mon));
  ignore (Monitor.recover_suspects mon);
  (* a new incarnation of the slot is a new incident *)
  let a2 = Shm.join arena ~cid:a.Ctx.cid () in
  ignore (Shm.cxl_malloc a2 ~size_bytes:16 ());
  Client.declare_failed svc ~cid:a2.Ctx.cid;
  ignore (Monitor.check_once mon);
  ignore (Monitor.check_once mon);
  Alcotest.(check int) "second incident dumps again" 2
    (List.length (Monitor.death_dumps mon));
  ignore (Monitor.recover_suspects mon);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_leader_election_and_abdication () =
  let arena = Shm.create ~cfg:lease_cfg () in
  let mon1 = Shm.monitor arena () in
  let mon2 = Shm.monitor arena ~id:1 () in
  ignore (Monitor.recover_suspects mon1);
  Alcotest.(check bool) "replica 0 elected" true (Monitor.is_leader mon1);
  ignore (Monitor.recover_suspects mon2);
  Alcotest.(check bool) "replica 1 follows" false (Monitor.is_leader mon2);
  (match Monitor.leader mon2 with
  | Some (0, _) -> ()
  | other ->
      Alcotest.failf "leader word should carry id 0, got %s"
        (match other with
        | None -> "none"
        | Some (i, d) -> Printf.sprintf "(%d, %d)" i d));
  Monitor.abdicate mon1;
  ignore (Monitor.recover_suspects mon2);
  Alcotest.(check bool) "replica 1 takes the open seat" true
    (Monitor.is_leader mon2)

let test_takeover_after_leader_lease_expiry () =
  (* The leader dies without abdicating: its lease keeps expiring on the
     shared clock, so a surviving replica deposes it. *)
  let arena = Shm.create ~cfg:lease_cfg () in
  let mon1 = Shm.monitor arena () in
  let mon2 = Shm.monitor arena ~id:1 () in
  ignore (Monitor.recover_suspects mon1);
  Alcotest.(check bool) "replica 0 elected" true (Monitor.is_leader mon1);
  (* replica 0 goes silent; replica 1 keeps checking (and ticking) *)
  ignore (Monitor.check_once mon2);
  ignore (Monitor.check_once mon2);
  ignore (Monitor.recover_suspects mon2);
  Alcotest.(check bool) "replica 1 deposed the dead leader" true
    (Monitor.is_leader mon2);
  match Monitor.leader mon2 with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "leader word should now carry id 1"

let test_follower_finishes_crashed_leader_recovery () =
  (* The leader crashes inside client recovery; the follower must depose it
     and finish the half-done recovery before anything else. *)
  let arena = Shm.create ~cfg:lease_cfg () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  let _ = List.init 5 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  let mon1 = Shm.monitor arena () in
  let mon2 = Shm.monitor arena ~id:1 () in
  Client.heartbeat a;
  Client.heartbeat b;
  ignore (Monitor.check_once mon1);
  Client.heartbeat b;
  ignore (Monitor.check_once mon1);
  Client.heartbeat b;
  Alcotest.(check (list int)) "a condemned" [ a.Ctx.cid ]
    (Monitor.check_once mon1);
  (* leader dies mid-recovery *)
  (Monitor.ctx mon1).Ctx.fault <- Fault.at Fault.Recovery_mid_phases ~nth:1;
  (try
     ignore (Monitor.recover_suspects mon1);
     Alcotest.fail "leader should have crashed mid-recovery"
   with Fault.Crashed _ -> ());
  Alcotest.(check bool) "a still failed after the crash" true
    (Client.status b ~cid:a.Ctx.cid = Client.Failed);
  (* the follower's passes expire the dead leader's lease *)
  Client.heartbeat b;
  ignore (Monitor.check_once mon2);
  Client.heartbeat b;
  ignore (Monitor.check_once mon2);
  Client.heartbeat b;
  (* Took_over resumes the interrupted recovery mid-flight — a's teardown
     completes inside the resume, so the Failed sweep finds nothing left. *)
  ignore (Monitor.recover_suspects mon2);
  Alcotest.(check bool) "follower took over" true (Monitor.is_leader mon2);
  Alcotest.(check bool) "slot reusable" true
    (Client.status b ~cid:a.Ctx.cid = Client.Slot_free);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean after takeover" true
    (Validate.is_clean (Shm.validate arena));
  Alcotest.(check bool) "b untouched" true (Client.is_alive b ~cid:b.Ctx.cid)

let test_monitor_background_domain () =
  let arena = Shm.create ~cfg:lease_cfg () in
  let a = Shm.join arena () in
  let _ = List.init 3 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  let mon = Shm.monitor arena () in
  let domain, stop = Monitor.run_in_domain mon ~interval:0.01 in
  (* a never heartbeats: the monitor should reap it *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    if Client.status (Shm.service_ctx arena) ~cid:a.Ctx.cid = Client.Slot_free
    then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "monitor never recovered the silent client"
    else begin
      Unix.sleepf 0.01;
      wait ()
    end
  in
  wait ();
  Atomic.set stop true;
  Domain.join domain;
  Alcotest.(check bool) "clean after async recovery" true
    (Validate.is_clean (Shm.validate arena))

let test_monitor_survives_device_faults () =
  (* The monitor is the component everything else relies on for liveness:
     a poisoned read must not silently kill its domain. Drown it in device
     faults, watch it count the failures and keep running, then service
     the devices and check it still reaps a silent client. *)
  let cfg =
    {
      Config.small with
      Config.lease_ttl = 1;
      Config.backend =
        Cxlshm_shmem.Mem.Faulty
          {
            base = Cxlshm_shmem.Mem.Flat;
            fault_spec =
              {
                Cxlshm_shmem.Backend_faulty.seed = 9;
                read_poison = 0.9;
                torn_write = 0.;
                stuck_word = 0.;
                offline = [];
              };
          };
    }
  in
  let arena = Shm.create ~cfg () in
  let a = Shm.join arena () in
  let _held = List.init 3 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  Shm.set_fault_injection arena true;
  let mon = Shm.monitor arena () in
  let handle = Monitor.run_in_domain mon ~interval:0.001 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Monitor.error_count mon < 3 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check bool) "loop iterations raised and were absorbed" true
    (Monitor.error_count mon >= 3);
  (* the devices get serviced; the same domain must still do its job *)
  Shm.set_fault_injection arena false;
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec wait () =
    if Client.status (Shm.service_ctx arena) ~cid:a.Ctx.cid = Client.Slot_free
    then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "monitor stopped working after device faults"
    else begin
      Unix.sleepf 0.005;
      wait ()
    end
  in
  wait ();
  (match Monitor.stop_and_join handle mon with
  | Some (Cxlshm_shmem.Mem.Device_error { transient; _ }) ->
      Alcotest.(check bool) "remembered a device error" true transient
  | Some e -> Alcotest.failf "unexpected last error: %s" (Printexc.to_string e)
  | None -> Alcotest.fail "no error remembered despite injected faults");
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean after the storm" true
    (Validate.is_clean (Shm.validate arena))

let test_heartbeat_monotone () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  let h0 = Client.heartbeat_value a ~cid:a.Ctx.cid in
  Client.heartbeat a;
  Client.heartbeat a;
  Alcotest.(check int) "two beats" (h0 + 2) (Client.heartbeat_value a ~cid:a.Ctx.cid)

let test_unregister_clears_lease () =
  (* A recycled slot must not be instantly re-suspected off the previous
     occupant's stale deadline. *)
  let arena = Shm.create ~cfg:lease_cfg () in
  let mon = Shm.monitor arena () in
  let a = Shm.join arena () in
  let cid = a.Ctx.cid in
  (* let a's lease go stale relative to the clock, then exit cleanly *)
  ignore (Monitor.check_once mon);
  ignore (Monitor.check_once mon);
  Client.heartbeat a;
  Shm.leave a;
  let svc = Shm.service_ctx arena in
  Alcotest.(check int) "deadline cleared on exit" 0
    (Lease.deadline svc ~cid);
  (* the recycled slot survives a full detection pass right after joining *)
  let a2 = Shm.join arena ~cid () in
  Alcotest.(check (list int)) "fresh occupant not condemned" []
    (Monitor.check_once mon);
  Alcotest.(check bool) "fresh occupant alive" true
    (Client.status a2 ~cid = Client.Alive || Client.status a2 ~cid = Client.Suspected);
  Shm.leave a2

let test_soak_monitor_kill () =
  (* The end-to-end control-plane soak: hung client under load, leader
     killed mid-recovery, follower takeover, then a full device drain. *)
  let f = Soak.monitor_kill ~seed:11 () in
  Alcotest.(check bool) "leader crashed mid-recovery" true
    f.Soak.leader_crashed;
  Alcotest.(check bool) "follower finished the recovery" true
    f.Soak.follower_finished;
  Alcotest.(check int) "zero live segments left on the degraded device" 0
    f.Soak.live_segments_left;
  Alcotest.(check bool) "post-fsck clean" true f.Soak.fo_clean

let suite =
  [
    Alcotest.test_case "register limits" `Quick test_register_limits;
    Alcotest.test_case "register specific cid" `Quick test_register_specific_cid;
    Alcotest.test_case "clean exit releases segments" `Quick test_clean_exit_releases_segments;
    Alcotest.test_case "monitor detects silence" `Quick test_monitor_detects_silence;
    Alcotest.test_case "suspected then renewed" `Quick test_suspected_then_renewed;
    Alcotest.test_case "hung client condemned" `Quick test_hung_client_condemned;
    Alcotest.test_case "fresh replica detects immediately" `Quick
      test_fresh_replica_detects_immediately;
    Alcotest.test_case "death dump once per incident" `Quick
      test_death_dump_once_per_incident;
    Alcotest.test_case "leader election and abdication" `Quick
      test_leader_election_and_abdication;
    Alcotest.test_case "takeover after leader lease expiry" `Quick
      test_takeover_after_leader_lease_expiry;
    Alcotest.test_case "follower finishes crashed leader recovery" `Quick
      test_follower_finishes_crashed_leader_recovery;
    Alcotest.test_case "unregister clears lease" `Quick test_unregister_clears_lease;
    Alcotest.test_case "monitor background domain" `Quick test_monitor_background_domain;
    Alcotest.test_case "heartbeat monotone" `Quick test_heartbeat_monotone;
    Alcotest.test_case "monitor survives device faults" `Quick test_monitor_survives_device_faults;
    Alcotest.test_case "soak: leader killed, follower drains device" `Quick
      test_soak_monitor_kill;
  ]
