(** Observability layer: event tracing + latency spans.

    A span ({!with_span}) wraps one hot-path operation. When the context's
    [trace_on] switch is off the span is a single branch; when on it

    - snapshots the client's {!Cxlshm_shmem.Stats} before/after and records
      the operation's modeled nanoseconds into the per-op histogram
      ([ctx.hists]), and
    - writes [Begin] / [End] (or [Err]) events into the client's
      fixed-size event ring in shared memory.

    Ring writes use control-plane stores ([Mem.ctl_poke]): no stats, no
    fault injection, no modeled-clock perturbation — and because the ring
    lives in the arena, a client killed mid-operation leaves its last
    events behind for the monitor, fsck and [cxlshm trace]. *)

type phase = Begin | End | Err

val phase_name : phase -> string

val set : Ctx.t -> bool -> unit
(** Toggle tracing for this client at runtime. *)

val emit :
  Ctx.t ->
  op:Cxlshm_shmem.Histogram.op ->
  phase:phase ->
  addr:int ->
  dur_ns:float ->
  unit
(** Append one event to the client's ring (cursor published last). *)

val with_span :
  Ctx.t -> Cxlshm_shmem.Histogram.op -> ?addr:int -> (unit -> 'a) -> 'a
(** [with_span ctx op ~addr f] runs [f], pricing it with the context's cost
    model. On exception the span emits [Err] (duration so far) and
    re-raises, so a crash-point kill is visible in the ring. *)

(** {1 Reading rings back}

    Decoding is deliberately strict: a slot whose tag does not decode is
    skipped ([dump]) or repaired ({!Fsck}). *)

type event = {
  seq : int;  (** monotone event number (ring slot = seq mod trace_slots) *)
  op : Cxlshm_shmem.Histogram.op;
  phase : phase;
  addr : int;
  era : int;  (** client's own era (Era[cid][cid]) when the event fired *)
  dur_ns : int;
  t_ns : int;  (** client's modeled clock at emission *)
}

val dump :
  Cxlshm_shmem.Mem.t -> Layout.t -> cid:int -> ?last:int -> unit -> event list
(** Events still in client [cid]'s ring, oldest first; [?last] keeps only
    the most recent [k]. Reads with control-plane loads, so it works on
    dead clients and damaged images. *)

val pp_event : Format.formatter -> event -> unit
