let () =
  Alcotest.run "cxlshm"
    [
      ("shmem", Test_shmem.suite);
      ("backends", Test_backends.suite);
      ("core-alloc", Test_core_alloc.suite);
      ("era", Test_era.suite);
      ("recovery", Test_recovery.suite);
      ("fault-injection", Test_fault_injection.suite);
      ("device-faults", Test_device_faults.suite);
      ("fsck", Test_fsck.suite);
      ("spsc", Test_spsc.suite);
      ("allocators", Test_allocators.suite);
      ("rpc", Test_rpc.suite);
      ("kv", Test_kv.suite);
      ("mapreduce", Test_mapreduce.suite);
      ("transfer", Test_transfer.suite);
      ("reclaim", Test_reclaim.suite);
      ("validate", Test_validate.suite);
      ("layout", Test_layout.suite);
      ("monitor-client", Test_monitor_client.suite);
      ("evacuate", Test_evacuate.suite);
      ("huge", Test_huge.suite);
      ("bench-util", Test_bench_util.suite);
      ("concurrent", Test_concurrent.suite);
      ("extensions", Test_extensions.suite);
      ("fault-kv", Test_fault_kv.suite);
      ("units", Test_units.suite);
      ("gc-persist", Test_gc_persist.suite);
      ("structures", Test_structures.suite);
      ("trace", Test_trace.suite);
      ("check", Test_check.suite);
      ("epoch", Test_epoch.suite);
    ]
