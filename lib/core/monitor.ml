type t = {
  id : int;  (** replica id — the identity used for leader election *)
  ctx : Ctx.t;  (** service context: stats attribution only *)
  errors : int Atomic.t;  (** loop iterations that raised *)
  last_error : exn option Atomic.t;
  mutable leadership : Lease.lead;
  mutable death_dumps : (int * Trace.event list) list;
      (** newest first: (cid, last ring events) captured at condemnation *)
}

let death_dump_events = 16

let create ~mem ~lay ?(id = 0) () =
  {
    id;
    ctx = Ctx.make ~cache:false ~epoch:false ~mem ~lay ~cid:0 ();
    errors = Atomic.make 0;
    last_error = Atomic.make None;
    leadership = Lease.Follower;
    death_dumps = [];
  }

let ctx t = t.ctx
let id t = t.id
let death_dumps t = t.death_dumps
let error_count t = Atomic.get t.errors
let last_error t = Atomic.get t.last_error
let degraded_devices t = Ctx.degraded_devices t.ctx

let is_leader t =
  match t.leadership with
  | Lease.Leader | Lease.Took_over -> true
  | Lease.Follower -> false

let leader t = Lease.leader t.ctx

let abdicate t =
  Lease.abdicate t.ctx ~id:t.id;
  t.leadership <- Lease.Follower

(* Forensics, exactly once per failure incident: the dump-claim word CAS
   (monotone, keyed by the slot's grant era) elects one capturer across
   every monitor replica and across repeated sightings of the same Failed
   slot — a client observed Failed on five consecutive passes, or declared
   failed twice by impatient tests, still dumps once. *)
let capture_death_dump t ~cid =
  let ctx = t.ctx in
  let era = Lease.era ctx ~cid in
  if era > 0 then begin
    let claim = Layout.client_dump_claim ctx.Ctx.lay cid in
    let prev = Ctx.load ctx claim in
    if prev < era && Ctx.cas ctx claim ~expected:prev ~desired:era then begin
      let events =
        Trace.dump ctx.Ctx.mem ctx.Ctx.lay ~cid ~last:death_dump_events ()
      in
      t.death_dumps <- (cid, events) :: t.death_dumps
    end
  end

let check_once t =
  let ctx = t.ctx in
  let m = (Ctx.cfg ctx).Config.max_clients in
  (* Every replica advances the logical clock, so leases keep expiring even
     when all but one monitor is dead — detection needs no leader. *)
  ignore (Lease.tick ctx);
  let condemned = ref [] in
  for cid = 0 to m - 1 do
    match Client.status ctx ~cid with
    | Client.Alive -> ignore (Lease.try_suspect ctx ~cid)
    | Client.Suspected ->
        if Lease.try_condemn ctx ~cid then begin
          capture_death_dump t ~cid;
          condemned := cid :: !condemned
        end
    | Client.Failed ->
        (* Declared by a peer replica or directly by a test: make sure the
           forensic dump is captured before recovery scrubs the arena. *)
        capture_death_dump t ~cid
    | Client.Slot_free -> ()
  done;
  List.rev !condemned

let recover_suspects t =
  let ctx = t.ctx in
  match Lease.try_lead ctx ~id:t.id with
  | Lease.Follower ->
      t.leadership <- Lease.Follower;
      []
  | (Lease.Leader | Lease.Took_over) as l ->
      t.leadership <- l;
      (* Taking over means the previous leader may have died mid-recovery:
         finish its interrupted instruction stream before looking for new
         Failed clients — exactly what that leader's next step would have
         been. *)
      (match Recovery.resume_interrupted ctx with Some _ -> () | None -> ());
      if l = Lease.Took_over then Ctx.crash_point ctx Fault.Lead_after_depose;
      let m = (Ctx.cfg ctx).Config.max_clients in
      let still_leader () =
        match Lease.leader ctx with
        | Some (lid, _) when lid = t.id -> true
        | Some _ | None ->
            (* Deposed mid-sweep (our own lease ran out while we stalled):
               stop before touching another client — the new leader owns
               the rest of the sweep. This bounds, but cannot fully close,
               the classic lease-fencing window: a leader stalled *inside*
               one client's recovery past its whole lease is
               indistinguishable from a dead one. *)
            t.leadership <- Lease.Follower;
            false
      in
      let out = ref [] in
      let cid = ref 0 in
      while !cid < m && still_leader () do
        if Client.status ctx ~cid:!cid = Client.Failed then
          out := (!cid, Recovery.recover ctx ~failed_cid:!cid) :: !out;
        incr cid
      done;
      List.rev !out

let evacuate_degraded t =
  if is_leader t && Ctx.degraded_devices t.ctx <> [] then
    Some (Evacuate.run ~mem:t.ctx.Ctx.mem ~lay:t.ctx.Ctx.lay)
  else None

let run_in_domain t ~interval =
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          (* The monitor is the component everything else relies on for
             liveness; one poisoned read or half-recovered client must not
             silently kill its domain. Count the failure, remember it, and
             keep watching — the next iteration retries from scratch. *)
          (try
             ignore (check_once t);
             ignore (recover_suspects t);
             if is_leader t then begin
               ignore (evacuate_degraded t);
               ignore
                 (Reclaim.scan_all t.ctx ~is_client_alive:(fun cid ->
                      Client.is_alive t.ctx ~cid))
             end
           with e ->
             Atomic.incr t.errors;
             Atomic.set t.last_error (Some e));
          Unix.sleepf interval
        done)
  in
  (d, stop)

let stop_and_join (d, stop) t =
  Atomic.set stop true;
  Domain.join d;
  (* Hand leadership back deliberately so a surviving replica takes over on
     its next pass instead of waiting out the leader lease. *)
  abdicate t;
  last_error t
