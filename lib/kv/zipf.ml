type t = { cdf : float array; rng : Random.State.t; theta : float }

let create ~n ~theta ~seed =
  if n < 1 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i wi ->
      acc := !acc +. (wi /. total);
      cdf.(i) <- !acc)
    w;
  cdf.(n - 1) <- 1.0;
  { cdf; rng = Random.State.make [| seed |]; theta }

let n t = Array.length t.cdf
let theta t = t.theta
let expected_top1_mass t = t.cdf.(0)

let sample t =
  let u = Random.State.float t.rng 1.0 in
  (* first index with cdf >= u *)
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 (Array.length t.cdf - 1)
