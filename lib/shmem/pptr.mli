(** Process-independent pointers.

    A [Pptr.t] is a word offset from the base of the shared arena — the same
    representation PMDK uses for persistent pointers and the paper uses for
    its "offset-based machine independent pointer" (§5.1). Word 0 of every
    arena is reserved, so offset 0 doubles as the null pointer. *)

type t = int

val null : t
val is_null : t -> bool
val of_word_offset : int -> t
val to_word_offset : t -> int

val add : t -> int -> t
(** Pointer arithmetic in words. *)

val pp : Format.formatter -> t -> unit
