(** mimalloc-like volatile allocator baseline (Fig 6).

    Same skeleton the paper builds CXL-SHM on: per-thread segments, pages
    per size class, intrusive free lists, no cross-thread synchronisation in
    the fast path — but no object headers, no RootRefs, no fence, no flush,
    running on local-DRAM latencies. The Fig 6 gap between this and CXL-SHM
    is exactly the cost of failure resilience plus the memory tier. *)

include Alloc_intf.S
