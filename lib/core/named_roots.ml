module Mem = Cxlshm_shmem.Mem
module Word = Cxlshm_shmem.Word

exception Name_taken of string
exception Directory_full

(* Slot word 0 packs {phase:2, owner_cid+1:10, name_hash:40}; word 1 is the
   counted object pointer (the ModifyRef target of publish/unpublish
   transactions). Phases: 0 free, 1 publishing, 2 published, 3 removing. *)
let f_phase = Word.field ~shift:0 ~bits:2
let f_owner = Word.field ~shift:2 ~bits:10
let f_hash = Word.field ~shift:12 ~bits:40

let pack ~phase ~owner ~hash =
  Word.set f_hash (Word.set f_owner (Word.set f_phase 0 phase) (owner + 1)) hash

let phase_of w = Word.get f_phase w
let owner_of w = Word.get f_owner w - 1
let hash_of w = Word.get f_hash w

let name_hash name = Hashtbl.hash (name, String.length name) land ((1 lsl 40) - 1)

let slot_state (ctx : Ctx.t) i = Layout.root_slot ctx.Ctx.lay i
let slot_ptr (ctx : Ctx.t) i = Layout.root_slot ctx.Ctx.lay i + 1

let find_hash (ctx : Ctx.t) h =
  let rec go i =
    if i >= Layout.root_slots then None
    else
      let w = Ctx.load ctx (slot_state ctx i) in
      if phase_of w = 2 && hash_of w = h then Some i else go (i + 1)
  in
  go 0

let publish (ctx : Ctx.t) ~name r =
  let h = name_hash name in
  if find_hash ctx h <> None then raise (Name_taken name);
  let rec claim i =
    if i >= Layout.root_slots then raise Directory_full
    else if
      Ctx.cas ctx (slot_state ctx i) ~expected:0
        ~desired:(pack ~phase:1 ~owner:ctx.Ctx.cid ~hash:h)
    then i
    else claim (i + 1)
  in
  let i = claim 0 in
  (* the directory takes a counted reference of its own *)
  Refc.attach ctx ~ref_addr:(slot_ptr ctx i) ~refed:(Cxl_ref.obj r);
  Ctx.fence ctx;
  Ctx.store ctx (slot_state ctx i) (pack ~phase:2 ~owner:ctx.Ctx.cid ~hash:h)

let lookup (ctx : Ctx.t) ~name =
  match find_hash ctx (name_hash name) with
  | None -> None
  | Some i ->
      let obj = Ctx.load ctx (slot_ptr ctx i) in
      if obj = 0 then None
      else begin
        let rr = Alloc.alloc_rootref ctx in
        Refc.attach ctx ~ref_addr:(Rootref.pptr_slot rr) ~refed:obj;
        Some (Cxl_ref.of_rootref ctx rr)
      end

let release_slot (ctx : Ctx.t) ~as_cid i =
  let obj = Ctx.load ctx (slot_ptr ctx i) in
  if obj <> 0 then begin
    let n = Refc.detach_as ctx ~as_cid ~ref_addr:(slot_ptr ctx i) ~refed:obj in
    if n = 0 then begin
      Reclaim.mark_leaking_of ctx obj;
      Reclaim.teardown_children ctx ~as_cid ~obj;
      Alloc.free_obj_block ctx obj
    end
  end;
  Ctx.store ctx (slot_state ctx i) 0

let unpublish (ctx : Ctx.t) ~name =
  match find_hash ctx (name_hash name) with
  | None -> false
  | Some i ->
      let w = Ctx.load ctx (slot_state ctx i) in
      if
        Ctx.cas ctx (slot_state ctx i) ~expected:w
          ~desired:(pack ~phase:3 ~owner:ctx.Ctx.cid ~hash:(hash_of w))
      then begin
        release_slot ctx ~as_cid:ctx.Ctx.cid i;
        true
      end
      else false

let names_hashes (ctx : Ctx.t) =
  let rec go i acc =
    if i >= Layout.root_slots then List.rev acc
    else
      let w = Ctx.load ctx (slot_state ctx i) in
      go (i + 1) (if phase_of w = 2 then hash_of w :: acc else acc)
  in
  go 0 []

let recover_endpoints (ctx : Ctx.t) ~failed_cid =
  for i = 0 to Layout.root_slots - 1 do
    let w = Ctx.load ctx (slot_state ctx i) in
    if owner_of w = failed_cid then
      match phase_of w with
      | 1 | 3 ->
          (* died mid-publish (roll back) or mid-unpublish (complete):
             both reduce to dropping the slot's reference, if any, and
             freeing the slot — restart-safe because the detach resumes
             through the standard redo path and a re-run sees ptr = 0. *)
          release_slot ctx ~as_cid:failed_cid i
      | _ -> ()
  done

let directory_refs mem lay =
  let rec go i acc =
    if i >= Layout.root_slots then List.rev acc
    else
      let w = Mem.unsafe_peek mem (Layout.root_slot lay i) in
      let p = Mem.unsafe_peek mem (Layout.root_slot lay i + 1) in
      go (i + 1) (if phase_of w <> 0 && p <> 0 then p :: acc else acc)
  in
  go 0 []

let clear_wild_directory_refs mem lay ~valid =
  let cleared = ref 0 in
  for i = 0 to Layout.root_slots - 1 do
    let w = Mem.unsafe_peek mem (Layout.root_slot lay i) in
    let p = Mem.unsafe_peek mem (Layout.root_slot lay i + 1) in
    if phase_of w <> 0 && p <> 0 && not (valid p) then begin
      Mem.unsafe_poke mem (Layout.root_slot lay i + 1) 0;
      Mem.unsafe_poke mem (Layout.root_slot lay i) 0;
      incr cleared
    end
  done;
  !cleared
