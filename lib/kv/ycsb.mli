(** YCSB-style workload generator (Fig 10 b/c).

    Generates operation streams with a configurable read/update/insert/RMW
    mix and a request distribution over the key population (the paper's
    "own custom configuration (different zipf parameters)"). Deterministic
    per seed. *)

(** Request distribution: [Zipfian] ranks a static hot set, [Latest] maps
    the hottest ranks to the most recently inserted keys (tracking the
    population as inserts grow it), [Uniform] ignores skew. *)
type dist = Zipfian | Latest | Uniform

type mix = { read : float; update : float; insert : float; rmw : float }
(** Operation-type fractions; must sum to 1. *)

type t

val create :
  keys:int -> write_ratio:float -> theta:float -> seed:int -> t
(** Read/update only: [write_ratio] = writes / (reads + writes):
    1:9 W/R → 0.1; 1:0 → 1.0. *)

val create_mix :
  keys:int -> mix:mix -> dist:dist -> theta:float -> seed:int -> t

val next : t -> Kv_intf.op

val keys : t -> int
(** Current population (initial keys plus inserts generated so far). *)

val mix : t -> mix
val dist : t -> dist

val expected_writes : t -> float
(** Expected fraction of write ops ([update + insert + rmw]). *)

(** {1 Load phase}

    Insert every initial key once. [load_iter]/[load_seq] stream the ops so
    a millions-of-keys preload never materialises the population as an
    OCaml list; [load_ops] remains for small benchmark populations. *)

val load_iter : t -> (Kv_intf.op -> unit) -> unit
val load_seq : t -> Kv_intf.op Seq.t
val load_ops : t -> Kv_intf.op list

(** {1 Standard workload presets}

    The canonical YCSB core workloads:
    A = 50 % update, B = 5 % update, C = read-only, all zipf 0.99;
    D = 5 % insert with the {e latest} request distribution (reads chase
    recently inserted keys); F = 50 % read-modify-write, zipf 0.99. *)

type preset = A | B | C | D | F

val preset_name : preset -> string
val of_preset : keys:int -> seed:int -> preset -> t
