(** Crash-point × device-fault soak sweep (§6.2.2 under a fault model).

    A run drives the randomized multi-client workload against an arena
    whose backend may inject device faults on a deterministic schedule,
    while one client carries a crash-point plan. Clients that hit a fault
    or crash point fail-stop. Afterwards the injection is disarmed (the
    devices are "serviced"), every client is crash-recovered, the arena is
    validated, {!Fsck.repair} runs, and the run's verdict is the post-fsck
    validation. Everything derives from the run's seed, so a failure
    replays exactly from the emitted JSON record. *)

type schedule = {
  sname : string;
  read_poison : float;  (** per-load transient poison probability *)
  torn_write : float;  (** per-store torn-write probability *)
  stuck_word : float;  (** per-store stuck-at probability (persistent) *)
  offline : (int * int * int) list;
      (** [(device, first_op, last_op)] outage windows *)
}

val quiet_schedule : schedule
(** No injection at all — the crash-only baseline. *)

val default_schedules : schedule list
(** [quiet]; [transient] (poison + tears); [stuck] (persistent media
    damage); [offline] (device outage windows). *)

val default_backends : (string * Cxlshm_shmem.Mem.backend_spec) list
(** Flat, and 4-device segment-granularity striping. *)

type run = {
  backend : string;
  schedule : string;
  point : string;  (** crash-point name, or ["none"] *)
  seed : int;
  steps : int;
  crashes : (int * string) list;  (** (cid, cause) for each failed client *)
  dev_faults : int;  (** device errors surfaced to clients *)
  retries : int;
  backoff_ns : float;
  escalations : int;
  injected : (string * int) list;  (** backend-side per-class counts *)
  degraded : int list;  (** devices degraded before servicing *)
  sweep_errors : int;  (** recovery attempts that raised, pre-fsck *)
  pre_clean : bool;  (** validation after recovery, before fsck *)
  fsck : Fsck.report;
  clean : bool;  (** the verdict: post-fsck validation *)
}

val run_one :
  backend:string * Cxlshm_shmem.Mem.backend_spec ->
  schedule:schedule ->
  point:Fault.point option ->
  seed:int ->
  steps:int ->
  run

val mix_seed : base:int -> bi:int -> si:int -> pi:int -> int
(** Per-run seed from the base seed and the run's matrix coordinates
    (backend, schedule, point indices) — what {!run_matrix} uses, exposed
    so a driver iterating cell by cell produces the same runs. *)

val run_matrix :
  ?backends:(string * Cxlshm_shmem.Mem.backend_spec) list ->
  ?schedules:schedule list ->
  ?points:Fault.point option list ->
  seed:int ->
  steps:int ->
  unit ->
  run list
(** Full sweep: backends × schedules × points (default: every
    {!Fault.all_points} plus no-crash). Per-run seeds mix the base seed
    with the matrix coordinates, so any single run can be re-run alone. *)

val failures : run list -> run list

(** {1 Monitor-kill failover schedule} *)

type failover = {
  fo_seed : int;
  fo_steps : int;
  hung_cid : int;  (** the client that went silent under load *)
  leader_crashed : bool;  (** replica 0 died inside the recovery it led *)
  follower_finished : bool;  (** replica 1 freed the hung client's slot *)
  fo_degraded : int;  (** the device drained after the takeover *)
  live_segments_left : int;  (** live segments still on it at the end *)
  fo_clean : bool;  (** final post-fsck validation *)
}

val monitor_kill : ?steps:int -> seed:int -> unit -> failover
(** The control-plane soak: a linked multi-client workload on a 4-device
    striped pool; one client hangs (alive, holding references, lease
    lapsing); the leader monitor replica is killed inside the recovery it
    started; the follower must depose it and finish that recovery
    mid-flight; then device 0 is marked degraded and drained — survivors
    relocate their own RootRef blocks, the new leader sweeps the rest. A
    passing run has [follower_finished], [live_segments_left = 0] and
    [fo_clean]. Deterministic in [seed]: the replicas interleave
    synchronously, no domains. *)

val pp_failover : Format.formatter -> failover -> unit

val pp_run : Format.formatter -> run -> unit

val run_to_json : run -> string

val matrix_to_json : seed:int -> run list -> string
(** Machine-readable sweep summary: base seed, totals, the failing runs'
    coordinates (for replay), and every run record. *)
