module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency

let name = "ralloc"
let page_words = 512
let max_roots = 4096

(* Layout: +0 reserved, +1 page bump, +2 root count, +3.. roots,
   then per-page {class+1} map, then per-page free heads, then thread
   tables, then pages. Every block has a one-word header recording
   {allocated:1} so the sweep can find block boundaries. *)
type t = {
  mem : Mem.t;
  num_pages : int;
  roots_base : int;
  page_map_base : int;
  meta_base : int;
  thread_base : int;
  pages_base : int;
  nclasses : int;
  threads : int;
  mutable scanned : int;
}

type thread = {
  a : t;
  tid : int;
  st : Stats.t;
  pages : int list array;  (** per-class page queue of this thread *)
}

(* Optane-class persistent memory: random latency lands near the
   remote-NUMA tier of Table 1. *)
let tier _ = Latency.Remote_numa

let create ~words ~threads =
  let nclasses = Size_class.num_classes ~page_words in
  let overhead np =
    3 + max_roots + np + np + (threads * nclasses)
  in
  let rec fit np = if overhead np + (np * page_words) > words then np - 1 else fit (np + 1) in
  let num_pages = fit 1 in
  if num_pages < 1 then invalid_arg "Ralloc.create: arena too small";
  let mem = Mem.create ~tier:Latency.Remote_numa ~words () in
  {
    mem;
    num_pages;
    roots_base = 3;
    page_map_base = 3 + max_roots;
    meta_base = 3 + max_roots + num_pages;
    thread_base = 3 + max_roots + num_pages + num_pages;
    pages_base = overhead num_pages;
    nclasses;
    threads;
    scanned = 0;
  }

let thread a tid =
  if tid < 0 || tid >= a.threads then invalid_arg "Ralloc.thread";
  { a; tid; st = Stats.create (); pages = Array.make a.nclasses [] }

let stats th = th.st
let serial_stats _ = Stats.create ()
let instance_of_thread th = th.a
let words_scanned a = a.scanned

let free_head_addr a p = a.meta_base + p

(* Block layout: word 0 = {allocated flag}; payload follows. The free-list
   next pointer reuses word 1. *)
let hdr_words = 1

let claim_page th ~cls =
  let a = th.a in
  let p = Mem.fetch_add a.mem ~st:th.st 1 1 in
  if p >= a.num_pages then raise Out_of_memory;
  Mem.store a.mem ~st:th.st (a.page_map_base + p) (cls + 1);
  let bw = Size_class.block_words cls + hdr_words in
  let cap = page_words / bw in
  let base = a.pages_base + (p * page_words) in
  for i = 0 to cap - 1 do
    let b = base + (i * bw) in
    Mem.store a.mem ~st:th.st b 0;
    Mem.store a.mem ~st:th.st (b + 1)
      (if i = cap - 1 then 0 else base + ((i + 1) * bw))
  done;
  Mem.store a.mem ~st:th.st (free_head_addr a p) base;
  p

let alloc th ~size_bytes =
  let a = th.a in
  let c = Size_class.class_of_bytes ~page_words size_bytes in
  let use_page p =
    let head = Mem.load a.mem ~st:th.st (free_head_addr a p) in
    if head = 0 then None
    else begin
      let next = Mem.load a.mem ~st:th.st (head + 1) in
      Mem.store a.mem ~st:th.st (free_head_addr a p) next;
      (* Ralloc's design point: free lists are volatile (post-crash GC
         rebuilds them), only the allocated-header must persist before the
         block is handed out. *)
      Mem.store a.mem ~st:th.st head 1;
      Mem.flush a.mem ~st:th.st head;
      Mem.fence a.mem ~st:th.st;
      Some (head + hdr_words)
    end
  in
  let rec from_queue seen = function
    | [] ->
        let p = claim_page th ~cls:c in
        th.pages.(c) <- p :: List.rev_append seen [];
        Option.get (use_page p)
    | p :: rest -> (
        match use_page p with
        | Some b ->
            th.pages.(c) <- p :: List.rev_append seen rest;
            b
        | None -> from_queue (p :: seen) rest)
  in
  from_queue [] th.pages.(c)

let free th b =
  let a = th.a in
  let blk = b - hdr_words in
  let p = (blk - a.pages_base) / page_words in
  (* the header flip must persist (sweep correctness); the list push is
     volatile *)
  Mem.store a.mem ~st:th.st blk 0;
  Mem.flush a.mem ~st:th.st blk;
  let head = Mem.load a.mem ~st:th.st (free_head_addr a p) in
  Mem.store a.mem ~st:th.st (blk + 1) head;
  Mem.store a.mem ~st:th.st (free_head_addr a p) blk

let write_word th b i v = Mem.store th.a.mem ~st:th.st (b + i) v
let read_word th b i = Mem.load th.a.mem ~st:th.st (b + i)

let set_root th b =
  let a = th.a in
  let n = Mem.fetch_add a.mem ~st:th.st 2 1 in
  if n >= max_roots then invalid_arg "Ralloc.set_root: too many roots";
  Mem.store a.mem ~st:th.st (a.roots_base + n) b

(* Stop-the-world conservative mark & sweep over the whole carved heap —
   the §4.1 recovery model whose pause the paper contrasts with CXL-SHM. *)
let recover a ~st =
  let carved = Mem.load a.mem ~st 1 in
  let carved = min carved a.num_pages in
  let block_of addr =
    if addr < a.pages_base then None
    else
      let p = (addr - a.pages_base) / page_words in
      if p >= carved then None
      else
        let cls = Mem.load a.mem ~st (a.page_map_base + p) - 1 in
        if cls < 0 then None
        else
          let bw = Size_class.block_words cls + hdr_words in
          let base = a.pages_base + (p * page_words) in
          let i = (addr - base) / bw in
          if i * bw + base + bw <= base + page_words then Some (base + (i * bw), bw)
          else None
  in
  let marked : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let scanned = ref 0 in
  let rec mark addr =
    match block_of addr with
    | None -> ()
    | Some (blk, bw) ->
        if not (Hashtbl.mem marked blk) then begin
          Hashtbl.replace marked blk ();
          (* conservative scan of the payload *)
          for w = hdr_words to bw - 1 do
            incr scanned;
            mark (Mem.load a.mem ~st (blk + w))
          done
        end
  in
  let nroots = Mem.load a.mem ~st 2 in
  for r = 0 to min nroots max_roots - 1 do
    mark (Mem.load a.mem ~st (a.roots_base + r))
  done;
  (* sweep: every allocated, unmarked block goes back to its free list *)
  let swept = ref 0 in
  for p = 0 to carved - 1 do
    let cls = Mem.load a.mem ~st (a.page_map_base + p) - 1 in
    if cls >= 0 then begin
      let bw = Size_class.block_words cls + hdr_words in
      let base = a.pages_base + (p * page_words) in
      let cap = page_words / bw in
      for i = 0 to cap - 1 do
        let blk = base + (i * bw) in
        incr scanned;
        if Mem.load a.mem ~st blk = 1 && not (Hashtbl.mem marked blk) then begin
          Mem.store a.mem ~st blk 0;
          let head = Mem.load a.mem ~st (free_head_addr a p) in
          Mem.store a.mem ~st (blk + 1) head;
          Mem.store a.mem ~st (free_head_addr a p) blk;
          Mem.flush a.mem ~st (free_head_addr a p);
          incr swept
        end
      done
    end
  done;
  Mem.fence a.mem ~st;
  a.scanned <- !scanned;
  (Hashtbl.length marked, !swept)
