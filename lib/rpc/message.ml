open Cxlshm
module Mem = Cxlshm_shmem.Mem

type view = { ctx : Ctx.t; obj : int }

let view ctx obj =
  if obj = 0 then invalid_arg "Message.view: null object";
  { ctx; obj }

let view_of_ref r = { ctx = Cxl_ref.ctx r; obj = Cxl_ref.obj r }
let obj v = v.obj

let meta v = Ctx.load v.ctx (Obj_header.meta_of_obj v.obj)
let data_words v = Obj_header.meta_data_words (meta v)
let emb_cnt v = Obj_header.meta_emb_cnt (meta v)
let data v = Obj_header.data_of_obj v.obj

let read_word v i =
  if i < 0 || i >= data_words v then invalid_arg "Message.read_word";
  Ctx.load v.ctx (data v + i)

let write_word v i x =
  if i < 0 || i >= data_words v then invalid_arg "Message.write_word";
  Ctx.store v.ctx (data v + i) x

let byte_base v = data v + emb_cnt v

let read_bytes v ~len =
  Mem.read_bytes v.ctx.Ctx.mem ~st:v.ctx.Ctx.st (byte_base v) ~len

let write_bytes v b =
  if Mem.bytes_words (Bytes.length b) > data_words v - emb_cnt v then
    invalid_arg "Message.write_bytes: payload too large";
  Mem.write_bytes v.ctx.Ctx.mem ~st:v.ctx.Ctx.st (byte_base v) b

let read_bytes_at v ~word_off ~len =
  if word_off < emb_cnt v || Mem.bytes_words len > data_words v - word_off then
    invalid_arg "Message.read_bytes_at";
  Mem.read_bytes v.ctx.Ctx.mem ~st:v.ctx.Ctx.st (data v + word_off) ~len

let write_bytes_at v ~word_off b =
  if
    word_off < emb_cnt v
    || Mem.bytes_words (Bytes.length b) > data_words v - word_off
  then invalid_arg "Message.write_bytes_at";
  Mem.write_bytes v.ctx.Ctx.mem ~st:v.ctx.Ctx.st (data v + word_off) b

(* rpc_msg: emb slots [0..I-1] = args, [I] = output; plain words:
   +0 func id, +1 nargs, +2 completion status (relative to the end of the
   embedded slots). *)
let msg_data_words ~nargs = nargs + 1 + 3

let build ctx ~func ~args ~output =
  let nargs = List.length args in
  let msg =
    Shm.cxl_malloc_words ctx ~data_words:(msg_data_words ~nargs)
      ~emb_cnt:(nargs + 1) ()
  in
  List.iteri (fun i a -> Cxl_ref.set_emb msg i a) args;
  Cxl_ref.set_emb msg nargs output;
  Cxl_ref.write_word msg (nargs + 1) func;
  Cxl_ref.write_word msg (nargs + 2) nargs;
  Cxl_ref.write_word msg (nargs + 3) 0;
  msg

let func v = read_word v (emb_cnt v)
let nargs v = read_word v (emb_cnt v + 1)
let status v = read_word v (emb_cnt v + 2)

let set_status v s =
  write_word v (emb_cnt v + 2) s;
  Mem.flush v.ctx.Ctx.mem ~st:v.ctx.Ctx.st (data v + emb_cnt v + 2)

let arg v i =
  let n = nargs v in
  if i < 0 || i >= n then invalid_arg "Message.arg";
  view v.ctx (Ctx.load v.ctx (Obj_header.emb_slot v.obj i))

let output v = view v.ctx (Ctx.load v.ctx (Obj_header.emb_slot v.obj (nargs v)))
