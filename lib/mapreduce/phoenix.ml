let run ~executors ~chunks ~job =
  if executors < 1 then invalid_arg "Phoenix.run: executors >= 1";
  let chunk_arr = Array.of_list chunks in
  let n = Array.length chunk_arr in
  let next = Atomic.make 0 in
  let worker () =
    let acc = Hashtbl.create 256 in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        List.iter
          (fun (k, v) ->
            Hashtbl.replace acc k
              (match Hashtbl.find_opt acc k with
              | Some v0 -> job.Mr_job.combine v0 v
              | None -> v))
          (job.Mr_job.map chunk_arr.(i));
        loop ()
      end
    in
    loop ();
    acc
  in
  let partials =
    if executors = 1 then [ worker () ]
    else
      List.map Domain.join
        (List.init executors (fun _ -> Domain.spawn worker))
  in
  let merged = Hashtbl.create 1024 in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace merged k
            (match Hashtbl.find_opt merged k with
            | Some v0 -> job.Mr_job.combine v0 v
            | None -> v))
        tbl)
    partials;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])
