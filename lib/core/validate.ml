module Mem = Cxlshm_shmem.Mem
module Word = Cxlshm_shmem.Word

type t = {
  live_objects : int;
  live_rootrefs : int;
  free_blocks : int;
  pending_scan : int;
  leaks : int;
  double_frees : int;
  wild_pointers : int;
  count_mismatches : int;
  errors : string list;
}

let is_clean t =
  t.leaks = 0 && t.double_frees = 0 && t.wild_pointers = 0
  && t.count_mismatches = 0

let pp ppf t =
  Format.fprintf ppf
    "live=%d rootrefs=%d free=%d pending=%d leaks=%d double-frees=%d wild=%d \
     mismatches=%d"
    t.live_objects t.live_rootrefs t.free_blocks t.pending_scan t.leaks t.double_frees
    t.wild_pointers t.count_mismatches

type acc = {
  mutable live : int;
  mutable live_rr : int;
  mutable free : int;
  mutable pending : int;
  mutable leak : int;
  mutable dfree : int;
  mutable wild : int;
  mutable mism : int;
  mutable errs : string list;
}

let err acc fmt = Printf.ksprintf (fun s -> acc.errs <- s :: acc.errs) fmt

(* Is [p] the base of a block we could legally reference? Pure metadata
   peeks — never follows [p] — so it is safe to ask about arbitrary (even
   hostile) words; the RPC validation walk relies on exactly that. *)
let block_base_ok mem lay p =
  let peek = Mem.unsafe_peek mem in
  let cfg = lay.Layout.cfg in
  let rr_kind = Config.kind_rootref cfg in
  let huge_kind = Config.kind_huge cfg in
  let page_kind gid = peek (Layout.page_kind lay ~gid) in
  if p <= 0 || p >= lay.Layout.total_words then false
  else
    match Layout.segment_of_addr lay p with
    | exception Invalid_argument _ -> false
    | seg -> (
        let st = peek (Layout.seg_state lay seg) in
        if st = 4 (* huge head *) || st = 5 (* huge cont *)
           || page_kind (Layout.page_gid lay ~seg ~page:0) = huge_kind
        then p = Layout.segment_base lay seg + lay.Layout.seg_hdr_words
        else
          match Layout.page_gid_of_addr lay p with
          | exception Invalid_argument _ -> false
          | gid ->
              let bw = peek (Layout.page_block_words lay ~gid) in
              let base = Layout.page_area lay ~gid in
              page_kind gid <> Config.kind_unused
              && page_kind gid <> rr_kind
              && bw > 0
              && (p - base) mod bw = 0
              && (p - base) / bw < peek (Layout.page_capacity lay ~gid))

let run mem lay =
  let cfg = lay.Layout.cfg in
  let peek = Mem.unsafe_peek mem in
  let acc =
    { live = 0; live_rr = 0; free = 0; pending = 0; leak = 0; dfree = 0; wild = 0;
      mism = 0; errs = [] }
  in
  let rr_kind = Config.kind_rootref cfg in
  let huge_kind = Config.kind_huge cfg in
  let pps = cfg.Config.pages_per_segment in

  (* ---- enumerate initialised pages and their blocks ---- *)
  let page_kind gid = peek (Layout.page_kind lay ~gid) in
  let page_blocks gid =
    let bw = peek (Layout.page_block_words lay ~gid) in
    let cap = peek (Layout.page_capacity lay ~gid) in
    let base = Layout.page_area lay ~gid in
    if bw = 0 then []
    else List.init cap (fun i -> base + (i * bw))
  in
  let seg_state s = peek (Layout.seg_state lay s) in
  let seg_owner s =
    let v = peek (Layout.seg_occupied lay s) in
    if v = 0 then None else Some (v - 1)
  in
  (* 1 = Alive, 3 = Suspected: a suspected client may still be rescued by
     its own heartbeat, so its segments are not scan-pending. *)
  let client_alive c =
    let f = peek (Layout.client_flags lay c) in
    f = 1 || f = 3
  in

  (* Is [p] the base of a block we could legally reference? *)
  let block_base_ok p = block_base_ok mem lay p in

  (* ---- collect reference holders ---- *)
  let expected : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let holders : (int, string list) Hashtbl.t = Hashtbl.create 256 in
  let add_ref ~from obj =
    if not (block_base_ok obj) then begin
      acc.wild <- acc.wild + 1;
      err acc "wild pointer @%d held by %s" obj from
    end
    else begin
      Hashtbl.replace expected obj
        (1 + (try Hashtbl.find expected obj with Not_found -> 0));
      Hashtbl.replace holders obj
        (from :: (try Hashtbl.find holders obj with Not_found -> []))
    end
  in

  (* RootRefs *)
  for seg = 0 to cfg.Config.num_segments - 1 do
    for p = 0 to pps - 1 do
      let gid = Layout.page_gid lay ~seg ~page:p in
      if page_kind gid = rr_kind then
        List.iter
          (fun rr ->
            if Rootref.peek_in_use mem rr then begin
              let obj = Rootref.peek_obj mem rr in
              if obj <> 0 then
                add_ref ~from:(Printf.sprintf "rootref@%d" rr) obj
            end)
          (page_blocks gid)
    done
  done;
  (* Queue directory *)
  List.iter
    (fun qptr -> add_ref ~from:"queue-directory" qptr)
    (Transfer.directory_refs mem lay);
  (* Named persistent roots *)
  List.iter
    (fun p -> add_ref ~from:"named-root" p)
    (Named_roots.directory_refs mem lay);
  (* Embedded references of live blocks (incl. huge objects). *)
  let scan_live_obj obj =
    let meta = peek (Obj_header.meta_of_obj obj) in
    let emb = Obj_header.meta_emb_cnt meta in
    for i = 0 to emb - 1 do
      let child = peek (Obj_header.emb_slot obj i) in
      if child <> 0 then
        add_ref ~from:(Printf.sprintf "emb@%d[%d]" obj i) child
    done
  in
  for seg = 0 to cfg.Config.num_segments - 1 do
    let st = seg_state seg in
    if st = 4 || page_kind (Layout.page_gid lay ~seg ~page:0) = huge_kind then begin
      let obj = Layout.segment_base lay seg + lay.Layout.seg_hdr_words in
      if Obj_header.ref_cnt_of (peek obj) > 0 then scan_live_obj obj
    end
    else if st <> 5 then
      for p = 0 to pps - 1 do
        let gid = Layout.page_gid lay ~seg ~page:p in
        let k = page_kind gid in
        if k <> Config.kind_unused && k <> rr_kind && k <> huge_kind then
          List.iter
            (fun b -> if Obj_header.ref_cnt_of (peek b) > 0 then scan_live_obj b)
            (page_blocks gid)
      done
  done;

  (* ---- free structures ---- *)
  let free_set : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let add_free b where =
    if Hashtbl.mem free_set b then begin
      acc.dfree <- acc.dfree + 1;
      err acc "block @%d appears twice in free structures (%s)" b where
    end
    else Hashtbl.replace free_set b ()
  in
  for seg = 0 to cfg.Config.num_segments - 1 do
    let st = seg_state seg in
    if st <> 4 && st <> 5 then begin
      for p = 0 to pps - 1 do
        let gid = Layout.page_gid lay ~seg ~page:p in
        let k = page_kind gid in
        if k <> Config.kind_unused && k <> huge_kind then begin
          let off = Page.next_slot_offset ~kind_rootref:(k = rr_kind) in
          let cap = peek (Layout.page_capacity lay ~gid) in
          let rec walk p fuel =
            if p <> 0 then
              if fuel = 0 then begin
                acc.dfree <- acc.dfree + 1;
                err acc "free chain of page %d longer than capacity (cycle?)" gid
              end
              else begin
                add_free p (Printf.sprintf "page %d free chain" gid);
                walk (peek (p + off)) (fuel - 1)
              end
          in
          walk (peek (Layout.page_free lay ~gid)) (cap + 1)
        end
      done;
      (* cross-client stack *)
      let f_ptr = Word.field ~shift:0 ~bits:46 in
      let rec walk p fuel =
        if p <> 0 && fuel > 0 then begin
          add_free p (Printf.sprintf "segment %d client_free" seg);
          walk (peek (p + Config.header_words)) (fuel - 1)
        end
      in
      walk (Word.get f_ptr (peek (Layout.seg_client_free lay seg))) 10_000
    end
  done;

  (* ---- domain shard stacks ---- *)
  (* Parked entries are free blocks too. On-stack implies stamped (the
     stamp store precedes the head CAS and nothing unstamps a linked
     entry), so a stamp or kind mismatch is a real inconsistency — and
     the entry's next pointer can no longer be trusted, so stop there. *)
  if cfg.Config.num_domains > 0 then begin
    let f_ptr = Word.field ~shift:0 ~bits:46 in
    for d = 0 to cfg.Config.num_domains - 1 do
      for c = 0 to Config.num_classes cfg - 1 do
        let rec walk p fuel =
          if p <> 0 && fuel > 0 then
            if peek (Shard.stamp_slot p) <> Shard.stamp_of p then begin
              acc.dfree <- acc.dfree + 1;
              err acc "shard stack d%d/c%d: entry @%d bad stamp" d c p
            end
            else if page_kind (Layout.page_gid_of_addr lay p)
                    <> Config.kind_of_class c
            then begin
              acc.dfree <- acc.dfree + 1;
              err acc "shard stack d%d/c%d: entry @%d wrong class" d c p
            end
            else begin
              add_free p (Printf.sprintf "shard stack d%d/c%d" d c);
              walk (peek (p + Config.header_words)) (fuel - 1)
            end
        in
        walk
          (Word.get f_ptr (peek (Layout.domain_class_head lay d c)))
          10_000
      done
    done
  end;

  (* ---- parked-record registries and the adoption journal ---- *)
  (* Both structures hold rootrefs (the rootref page scan above already
     counted them as object holders); here we check the structures
     themselves: an occupied entry must name a live rootref with a target,
     a journal claim must name a possible client, and no rootref may be
     journaled twice. *)
  let rootref_ok rr =
    rr > 0 && rr < lay.Layout.total_words
    && (match Layout.page_gid_of_addr lay rr with
       | exception Invalid_argument _ -> false
       | gid ->
           page_kind gid = rr_kind
           && (rr - Layout.page_area lay ~gid) mod Config.rootref_words = 0)
  in
  for c = 0 to cfg.Config.max_clients - 1 do
    for k = 0 to Layout.park_capacity lay - 1 do
      let rr = peek (Layout.park_slot_rr lay c k) in
      if rr <> 0 then
        if not (rootref_ok rr && Rootref.peek_in_use mem rr) then begin
          acc.wild <- acc.wild + 1;
          err acc "park registry c%d[%d]: rr @%d is not a live rootref" c k rr
        end
        else if peek (Layout.client_flags lay c) = 0 then begin
          acc.mism <- acc.mism + 1;
          err acc
            "park registry c%d[%d]: entry @%d outlived its freed client \
             slot (recovery should have journaled it)"
            c k rr
        end
    done
  done;
  let journaled : (int, int) Hashtbl.t = Hashtbl.create 16 in
  for i = 0 to Layout.adopt_capacity lay - 1 do
    let rr = peek (Layout.adopt_slot_rr lay i) in
    let claim = peek (Layout.adopt_slot_claim lay i) in
    if claim < 0 || claim > cfg.Config.max_clients then begin
      acc.mism <- acc.mism + 1;
      err acc "adoption journal [%d]: claim %d names no possible client" i
        claim
    end;
    if rr <> 0 then
      if not (rootref_ok rr && Rootref.peek_in_use mem rr) then begin
        acc.wild <- acc.wild + 1;
        err acc "adoption journal [%d]: rr @%d is not a live rootref" i rr
      end
      else begin
        (match Hashtbl.find_opt journaled rr with
        | Some j ->
            acc.dfree <- acc.dfree + 1;
            err acc "adoption journal [%d]: rr @%d already journaled at [%d]"
              i rr j
        | None -> Hashtbl.replace journaled rr i);
        if Rootref.peek_obj mem rr = 0 then begin
          acc.mism <- acc.mism + 1;
          err acc "adoption journal [%d]: rr @%d parks no object" i rr
        end
      end
  done;

  (* ---- classify every block ---- *)
  let scan_pending seg =
    let st = seg_state seg in
    st = 2 || st = 3
    || (match seg_owner seg with Some c -> not (client_alive c) | None -> false)
  in
  for seg = 0 to cfg.Config.num_segments - 1 do
    let st = seg_state seg in
    if st = 4 || page_kind (Layout.page_gid lay ~seg ~page:0) = huge_kind then begin
      let obj = Layout.segment_base lay seg + lay.Layout.seg_hdr_words in
      let cnt = Obj_header.ref_cnt_of (peek obj) in
      if cnt > 0 then begin
        acc.live <- acc.live + 1;
        let exp = try Hashtbl.find expected obj with Not_found -> 0 in
        if cnt <> exp then begin
          acc.mism <- acc.mism + 1;
          err acc "huge object @%d: count %d but %d holders" obj cnt exp
        end;
        (* The head page's true-length word must agree with the packed
           meta field — which saturates at [Obj_header.max_meta_data_words]
           — and fit inside the claimed run. 0 is a legal pre-aux2 image. *)
        let gid0 = Layout.page_gid lay ~seg ~page:0 in
        let span = max 1 (peek (Layout.page_aux lay ~gid:gid0)) in
        let truth = peek (Layout.page_aux2 lay ~gid:gid0) in
        let meta_dw =
          Obj_header.meta_data_words (peek (Obj_header.meta_of_obj obj))
        in
        let max_dw =
          lay.Layout.segment_words - lay.Layout.seg_hdr_words
          + ((span - 1) * lay.Layout.segment_words)
          - Config.header_words
        in
        let truth_ok =
          truth = 0
          || (truth >= 1 && truth <= max_dw
             && (truth = meta_dw
                || (meta_dw = Obj_header.max_meta_data_words
                   && truth >= meta_dw)))
        in
        if not truth_ok then begin
          acc.mism <- acc.mism + 1;
          err acc "huge object @%d: true length %d disagrees with meta %d"
            obj truth meta_dw
        end
      end
      else if scan_pending seg then acc.pending <- acc.pending + 1
      else begin
        acc.leak <- acc.leak + 1;
        err acc "huge object @%d: count 0, not pending any scan" obj
      end
    end
    else if st <> 5 then
      for p = 0 to pps - 1 do
        let gid = Layout.page_gid lay ~seg ~page:p in
        let k = page_kind gid in
        if k <> Config.kind_unused && k <> huge_kind then
          List.iter
            (fun b ->
              let is_rr = k = rr_kind in
              let live =
                if is_rr then Rootref.peek_in_use mem b
                else Obj_header.ref_cnt_of (peek b) > 0
              in
              let in_free = Hashtbl.mem free_set b in
              if live && in_free then begin
                acc.dfree <- acc.dfree + 1;
                err acc "block @%d is both live and free" b
              end
              else if live then begin
                if is_rr then acc.live_rr <- acc.live_rr + 1
                else acc.live <- acc.live + 1;
                if not is_rr then begin
                  let cnt = Obj_header.ref_cnt_of (peek b) in
                  let exp = try Hashtbl.find expected b with Not_found -> 0 in
                  if cnt <> exp then begin
                    acc.mism <- acc.mism + 1;
                    err acc "object @%d: count %d but %d holders (%s)" b cnt exp
                      (String.concat ", "
                         (try Hashtbl.find holders b with Not_found -> []))
                  end
                end
              end
              else if in_free then acc.free <- acc.free + 1
              else if scan_pending seg then acc.pending <- acc.pending + 1
              else begin
                acc.leak <- acc.leak + 1;
                err acc "block @%d: count 0, off-list, segment %d not pending"
                  b seg
              end)
            (page_blocks gid)
      done
  done;

  {
    live_objects = acc.live;
    live_rootrefs = acc.live_rr;
    free_blocks = acc.free;
    pending_scan = acc.pending;
    leaks = acc.leak;
    double_frees = acc.dfree;
    wild_pointers = acc.wild;
    count_mismatches = acc.mism;
    errors = List.rev acc.errs;
  }
