(** Segment allocation vector operations (Fig 3).

    Segments are claimed with a single CAS on the "occupied client id" word,
    so claiming needs no lock. The [version] word increments on every
    ownership change, and the cross-client free list ([client_free]) is a
    Treiber stack whose head word packs a {i tag} next to the pointer so the
    stack is ABA-safe. *)

type state =
  | Free
  | Active
  | Orphaned  (** owner died; adoptable; may still hold live blocks *)
  | Leaking   (** POTENTIAL_LEAKING (§5.3): recycle only via full scan *)
  | Huge_head
  | Huge_cont

val state_name : state -> string

val owner : Ctx.t -> int -> int option
(** Occupying client id of segment [s], if any. *)

val state : Ctx.t -> int -> state
val set_state : Ctx.t -> int -> state -> unit
val version : Ctx.t -> int -> int

val claim : Ctx.t -> int -> bool
(** CAS segment [s] from free to owned-by-this-client; on success the
    segment is [Active] and its version is bumped. *)

val adopt : Ctx.t -> int -> bool
(** CAS an [Orphaned] segment to this client. *)

val release : Ctx.t -> int -> unit
(** Give the segment back to the arena ([Free], unowned, version++). The
    caller must guarantee no live blocks remain. *)

val orphan : Ctx.t -> cid:int -> int -> unit
(** Recovery: mark a dead client's segment adoptable. *)

val mark_leaking : Ctx.t -> int -> unit
(** Idempotent POTENTIAL_LEAKING marking. Keeps [Huge_head] segments
    distinguishable by setting them to [Leaking] as well (the scan uses page
    kinds to tell them apart). *)

val find_free : Ctx.t -> int option
(** Index of some currently free segment (no claim performed). *)

val owned_by : Ctx.t -> cid:int -> int list
(** All segments currently occupied by [cid]. *)

(** {1 Cross-client free stack}

    Blocks freed by a non-owner are pushed here (mimalloc's thread-delayed
    free); the owner drains the stack in its slow path. *)

val push_client_free : Ctx.t -> seg:int -> Cxlshm_shmem.Pptr.t -> unit
val pop_all_client_free : Ctx.t -> seg:int -> Cxlshm_shmem.Pptr.t list
