(** Common interface of the baseline allocators used by the Fig 6 / §6.2.1
    benchmarks. Each allocator runs on its own simulated memory arena of the
    tier appropriate to what it models (DRAM for mimalloc/jemalloc, pmem ≈
    remote tier for Ralloc), so modeled time can be compared directly with
    CXL-SHM running on the CXL tier. *)

module type S = sig
  type t
  type thread

  val name : string

  val create : words:int -> threads:int -> t
  (** Build an allocator instance backed by a fresh local arena. *)

  val thread : t -> int -> thread
  (** Per-thread handle [0 .. threads-1]. *)

  val alloc : thread -> size_bytes:int -> Cxlshm_shmem.Pptr.t
  (** Allocate; raises [Out_of_memory] when the arena is exhausted. *)

  val free : thread -> Cxlshm_shmem.Pptr.t -> unit

  val write_word : thread -> Cxlshm_shmem.Pptr.t -> int -> int -> unit
  (** Touch the allocation (benchmarks write to verify liveness). *)

  val read_word : thread -> Cxlshm_shmem.Pptr.t -> int -> int

  val stats : thread -> Cxlshm_shmem.Stats.t
  (** Per-thread memory-event counters (parallel portion). *)

  val serial_stats : t -> Cxlshm_shmem.Stats.t
  (** Events that execute under a global lock and therefore serialise
      across threads (zero for lock-free allocators). *)

  val tier : t -> Cxlshm_shmem.Latency.tier
end
