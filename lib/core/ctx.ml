module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats

type t = {
  mem : Mem.t;
  lay : Layout.t;
  cid : int;
  home_dev : int;
  st : Stats.t;
  mutable fault : Fault.plan;
  mutable retry : Retry.policy;
  rng : Random.State.t;
  mutable trace_on : bool;
  hists : Cxlshm_shmem.Histogram.t array;
}

let make ~mem ~lay ~cid =
  if cid < 0 || cid >= lay.Layout.cfg.Config.max_clients then
    invalid_arg "Ctx.make: cid out of range";
  {
    mem;
    lay;
    cid;
    home_dev = cid mod Mem.num_devices mem;
    st = Stats.create ();
    fault = Fault.none;
    retry = Retry.default_policy;
    rng = Random.State.make [| 0x5eed; cid |];
    trace_on = lay.Layout.cfg.Config.trace;
    hists = Cxlshm_shmem.Histogram.create_set ();
  }

let cfg t = t.lay.Layout.cfg

(* Degraded-device bitmap (arena header): shared fault-status word the
   escalation path sets and allocation placement reads. The word itself
   lives on some device, so every access is best-effort — a pool that can't
   even serve its header word is beyond steering. Accesses bypass the
   injection/stats wrappers: marking a device bad must not itself retry. *)

let max_degradable_devices = 62 (* bits of a 63-bit non-negative word *)

let degraded_bitmap t = Mem.ctl_peek t.mem (Layout.hdr_dev_degraded t.lay)

let device_degraded t dev =
  dev < max_degradable_devices && (degraded_bitmap t lsr dev) land 1 = 1

let degraded_devices t =
  let bits = degraded_bitmap t in
  List.filter
    (fun d -> (bits lsr d) land 1 = 1)
    (List.init (min (Mem.num_devices t.mem) max_degradable_devices) Fun.id)

let mark_degraded t dev =
  if dev >= 0 && dev < max_degradable_devices then
    let p = Layout.hdr_dev_degraded t.lay in
    Mem.ctl_poke t.mem p (Mem.ctl_peek t.mem p lor (1 lsl dev))

let clear_degraded t = Mem.ctl_poke t.mem (Layout.hdr_dev_degraded t.lay) 0

let on_escalate t ~dev = mark_degraded t dev

let with_retries t f =
  Retry.with_retries ~policy:t.retry ~st:t.st ~on_escalate:(on_escalate t) f

(* A single word primitive has no interior commit point, so re-issuing it
   after a transient fault is always safe — the commit marker is unused. *)
let prim t f = with_retries t (fun _commit -> f ())

let load t p = prim t (fun () -> Mem.load t.mem ~st:t.st p)
let store t p v = prim t (fun () -> Mem.store t.mem ~st:t.st p v)

let cas t p ~expected ~desired =
  prim t (fun () -> Mem.cas t.mem ~st:t.st p ~expected ~desired)

let fetch_add t p n = prim t (fun () -> Mem.fetch_add t.mem ~st:t.st p n)
let fence t = Mem.fence t.mem ~st:t.st
let flush t p = prim t (fun () -> Mem.flush t.mem ~st:t.st p)
let crash_point t point = Fault.maybe_crash t.fault point
