(** Replay tokens: the exact decision sequence of one explored run.

    String form is [model:d,d,...] where each decision is [N] (resume
    client N at this branch point) or [cN] (crash client N). A failing run
    prints this string; [cxlshm explore --replay] parses it back and
    re-executes the run bit-identically. *)

type decision = Run of int | Crash of int

type t = { model : string; decisions : decision list }

val to_string : t -> string

val of_string : string -> t
(** Raises [Invalid_argument] on a malformed string. Round-trips exactly
    with {!to_string}. *)
