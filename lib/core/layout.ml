
type t = {
  cfg : Config.t;
  num_classes : int;
  arena_hdr : int;
  segvec_base : int;
  clientvec_base : int;
  client_state_words : int;
  domvec_base : int;
  queuedir_base : int;
  locks_base : int;
  roots_base : int;
  recovery_base : int;
  adopt_base : int;
  trace_base : int;
  trace_ring_words : int;
  segments_base : int;
  segment_words : int;
  seg_hdr_words : int;
  total_words : int;
}

let magic = 0x43584c53484d (* "CXLSHM" *)
let arena_hdr_words = 16
let seg_meta_words = 4
let redo_words = 8
let client_misc_words = 8
let queue_slot_words = 8
let page_meta_words = 8
let recovery_hdr_words = 16
let lock_stripes = 64
let root_slots = 64
let root_slot_words = 2

(* Per-client trace ring: a cursor word (monotone event counter; slot =
   counter mod trace_slots) plus fixed-width event slots of
   {tag, addr, era, dur_ns, t_ns}. *)
let trace_hdr_words = 2
let trace_slot_words = 5

(* Adoption-journal slot: {rootref, retire stamp, claim}. A non-zero
   rootref word is the commit point; claim = successor cid + 1 while an
   adoption is in flight. *)
let adopt_slot_words = 3

let align8 n = (n + 7) land lnot 7

let make cfg =
  Config.validate cfg;
  let num_classes = Config.num_classes cfg in
  let arena_hdr = 8 in
  let segvec_base = align8 (arena_hdr + arena_hdr_words) in
  let clientvec_base = align8 (segvec_base + (seg_meta_words * cfg.Config.num_segments)) in
  (* misc + era row + redo log + per-kind current-page table (classes +
     rootref) + current-segment cursor + retirement journal (count, base
     era, K rootref slots) + parked-record registry ((stamp, rr) pairs) *)
  let client_state_words =
    align8
      (client_misc_words + cfg.Config.max_clients + redo_words
      + (num_classes + 1) + 1
      + (2 + cfg.Config.epoch_batch)
      + (2 * cfg.Config.park_slots))
  in
  let domvec_base =
    align8 (clientvec_base + (client_state_words * cfg.Config.max_clients))
  in
  (* per-domain sharded class heads: one ABA-tagged Treiber stack head per
     (domain, object size class) *)
  let queuedir_base =
    align8 (domvec_base + (cfg.Config.num_domains * num_classes))
  in
  let locks_base =
    align8 (queuedir_base + (queue_slot_words * cfg.Config.queue_slots))
  in
  let roots_base = align8 (locks_base + lock_stripes) in
  let recovery_base = align8 (roots_base + (root_slots * root_slot_words)) in
  let adopt_base =
    align8 (recovery_base + recovery_hdr_words + cfg.Config.worklist_words)
  in
  let trace_base =
    align8 (adopt_base + (adopt_slot_words * cfg.Config.adopt_slots))
  in
  let trace_ring_words =
    align8 (trace_hdr_words + (trace_slot_words * cfg.Config.trace_slots))
  in
  let segments_base =
    align8 (trace_base + (trace_ring_words * cfg.Config.max_clients))
  in
  let seg_hdr_words =
    align8 (8 + (page_meta_words * cfg.Config.pages_per_segment))
  in
  let segment_words =
    seg_hdr_words + (cfg.Config.pages_per_segment * cfg.Config.page_words)
  in
  let total_words = segments_base + (segment_words * cfg.Config.num_segments) in
  {
    cfg;
    num_classes;
    arena_hdr;
    segvec_base;
    clientvec_base;
    client_state_words;
    domvec_base;
    queuedir_base;
    locks_base;
    roots_base;
    recovery_base;
    adopt_base;
    trace_base;
    trace_ring_words;
    segments_base;
    segment_words;
    seg_hdr_words;
    total_words;
  }

let hdr_magic t = t.arena_hdr
let hdr_epoch t = t.arena_hdr + 1
let hdr_dev_degraded t = t.arena_hdr + 2
let hdr_lease_clock t = t.arena_hdr + 3
let hdr_leader t = t.arena_hdr + 4
let hdr_evac_claim t = t.arena_hdr + 5
let hdr_evac_from t = t.arena_hdr + 6
let hdr_evac_to t = t.arena_hdr + 7
let hdr_evac_guard t = t.arena_hdr + 8

(* Leader word: {monitor id + 1, deadline tick} packed so election, renewal
   and deposition are each a single CAS. 0 = no leader. *)
let leader_id_bits = 15
let leader_pack ~id ~deadline = (deadline lsl leader_id_bits) lor (id + 1)

let leader_unpack w =
  if w = 0 then None
  else Some ((w land ((1 lsl leader_id_bits) - 1)) - 1, w lsr leader_id_bits)

let check_seg t s =
  if s < 0 || s >= t.cfg.Config.num_segments then
    invalid_arg (Printf.sprintf "Layout: segment %d out of range" s)

let seg_occupied t s = check_seg t s; t.segvec_base + (s * seg_meta_words)
let seg_version t s = seg_occupied t s + 1
let seg_state t s = seg_occupied t s + 2
let seg_client_free t s = seg_occupied t s + 3

let check_cid t i =
  if i < 0 || i >= t.cfg.Config.max_clients then
    invalid_arg (Printf.sprintf "Layout: client id %d out of range" i)

let client_state t i =
  check_cid t i;
  t.clientvec_base + (i * t.client_state_words)

let client_flags t i = client_state t i
let client_machine t i = client_state t i + 1
let client_process t i = client_state t i + 2
let client_heartbeat t i = client_state t i + 3
let client_hazard t i = client_state t i + 4
let client_lease_deadline t i = client_state t i + 5
let client_lease_era t i = client_state t i + 6
let client_dump_claim t i = client_state t i + 7

let era_cell t i j =
  check_cid t j;
  client_state t i + client_misc_words + j

let redo_base t i = client_state t i + client_misc_words + t.cfg.Config.max_clients

let class_head t i k =
  if k < 0 || k > t.num_classes then
    invalid_arg (Printf.sprintf "Layout.class_head: bad kind index %d" k);
  redo_base t i + redo_words + k

let client_cur_segment t i = class_head t i 0 + t.num_classes + 1

(* Retirement journal: [count; base_era; slot_0 .. slot_{K-1}]. A non-zero
   count is the sealed-batch commit point — recovery replays exactly that
   many slots under eras base_era .. base_era + count - 1. *)
let retire_count t i = client_cur_segment t i + 1
let retire_era t i = client_cur_segment t i + 2

let retire_slot t i k =
  if k < 0 || k >= t.cfg.Config.epoch_batch then
    invalid_arg (Printf.sprintf "Layout.retire_slot: slot %d out of range" k);
  client_cur_segment t i + 3 + k

(* Parked-record registry: [park_slots] pairs of (stamp, rr) after the
   retirement journal. A non-zero rr word is the commit point (the stamp
   is written and fenced first); rr = 0 marks the slot free, whatever the
   stamp word holds. Recovery of a dead writer moves the occupied slots
   into the arena-wide adoption journal, stamps intact. *)
let park_capacity t = t.cfg.Config.park_slots

let park_base t i = client_cur_segment t i + 3 + t.cfg.Config.epoch_batch

let park_slot_stamp t i k =
  if k < 0 || k >= park_capacity t then
    invalid_arg (Printf.sprintf "Layout.park_slot_stamp: slot %d out of range" k);
  park_base t i + (2 * k)

let park_slot_rr t i k =
  if k < 0 || k >= park_capacity t then
    invalid_arg (Printf.sprintf "Layout.park_slot_rr: slot %d out of range" k);
  park_base t i + (2 * k) + 1

let domain_class_head t d c =
  if d < 0 || d >= t.cfg.Config.num_domains then
    invalid_arg (Printf.sprintf "Layout.domain_class_head: domain %d" d);
  if c < 0 || c >= t.num_classes then
    invalid_arg (Printf.sprintf "Layout.domain_class_head: class %d" c);
  t.domvec_base + (d * t.num_classes) + c

let queue_slot t q =
  if q < 0 || q >= t.cfg.Config.queue_slots then
    invalid_arg "Layout.queue_slot: out of range";
  t.queuedir_base + (q * queue_slot_words)

(* Channel sub-heap registry: the four spare words of each 8-word queue
   directory slot record the RPC channel's private segments, so any client
   (and recovery) can map a queue to the sub-heap it isolates. *)
let queue_max_channel_segs = 3

let queue_slot_nsegs t q = queue_slot t q + 4

let queue_slot_seg t q k =
  if k < 0 || k >= queue_max_channel_segs then
    invalid_arg "Layout.queue_slot_seg: out of range";
  queue_slot t q + 5 + k

let lock_stripe t i =
  if i < 0 || i >= lock_stripes then invalid_arg "Layout.lock_stripe";
  t.locks_base + i

let root_slot t i =
  if i < 0 || i >= root_slots then invalid_arg "Layout.root_slot";
  t.roots_base + (i * root_slot_words)

let recovery_lock t = t.recovery_base
let recovery_failed t = t.recovery_base + 1
let recovery_phase t = t.recovery_base + 2
let recovery_wl_top t = t.recovery_base + 3
let recovery_wl_capacity t = t.cfg.Config.worklist_words

let recovery_wl_slot t i =
  if i < 0 || i >= recovery_wl_capacity t then
    invalid_arg "Layout.recovery_wl_slot: out of range";
  t.recovery_base + recovery_hdr_words + i

(* Adoption journal: arena-wide slots of {rr, stamp, claim}. The rr word
   is the commit point; recovery writes stamp (and zeroes claim) before
   fencing and publishing rr. claim = cid + 1 marks an in-flight adoption
   by that successor. *)
let adopt_capacity t = t.cfg.Config.adopt_slots

let check_adopt t k =
  if k < 0 || k >= adopt_capacity t then
    invalid_arg (Printf.sprintf "Layout.adopt_slot: slot %d out of range" k)

let adopt_slot_rr t k = check_adopt t k; t.adopt_base + (adopt_slot_words * k)
let adopt_slot_stamp t k = adopt_slot_rr t k + 1
let adopt_slot_claim t k = adopt_slot_rr t k + 2

let trace_ring t i =
  check_cid t i;
  t.trace_base + (i * t.trace_ring_words)

let trace_cursor t i = trace_ring t i

let trace_slot t i k =
  if k < 0 || k >= t.cfg.Config.trace_slots then
    invalid_arg "Layout.trace_slot: out of range";
  trace_ring t i + trace_hdr_words + (k * trace_slot_words)

let num_pages_total t = t.cfg.Config.num_segments * t.cfg.Config.pages_per_segment

let segment_base t s = check_seg t s; t.segments_base + (s * t.segment_words)

let segment_of_addr t addr =
  if addr < t.segments_base || addr >= t.total_words then
    invalid_arg (Printf.sprintf "Layout.segment_of_addr: %d outside segments" addr);
  (addr - t.segments_base) / t.segment_words

let page_gid t ~seg ~page =
  check_seg t seg;
  if page < 0 || page >= t.cfg.Config.pages_per_segment then
    invalid_arg "Layout.page_gid: page out of range";
  (seg * t.cfg.Config.pages_per_segment) + page

let page_of_gid t gid =
  if gid < 0 || gid >= num_pages_total t then
    invalid_arg "Layout.page_of_gid: out of range";
  (gid / t.cfg.Config.pages_per_segment, gid mod t.cfg.Config.pages_per_segment)

let page_meta t ~gid =
  let seg, page = page_of_gid t gid in
  segment_base t seg + 8 + (page * page_meta_words)

let page_kind t ~gid = page_meta t ~gid
let page_block_words t ~gid = page_meta t ~gid + 1
let page_capacity t ~gid = page_meta t ~gid + 2
let page_free t ~gid = page_meta t ~gid + 3
let page_used t ~gid = page_meta t ~gid + 4
let page_aux t ~gid = page_meta t ~gid + 5
let page_aux2 t ~gid = page_meta t ~gid + 6

let page_area t ~gid =
  let seg, page = page_of_gid t gid in
  segment_base t seg + t.seg_hdr_words + (page * t.cfg.Config.page_words)

let page_gid_of_addr t addr =
  let seg = segment_of_addr t addr in
  let off = addr - segment_base t seg - t.seg_hdr_words in
  if off < 0 then
    invalid_arg "Layout.page_gid_of_addr: address inside a segment header";
  let page = off / t.cfg.Config.page_words in
  page_gid t ~seg ~page

let block_addr t ~gid ~block_words i =
  let base = page_area t ~gid in
  let addr = base + (i * block_words) in
  if i < 0 || addr + block_words > base + t.cfg.Config.page_words then
    invalid_arg "Layout.block_addr: block index out of page";
  addr

