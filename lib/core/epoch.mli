(** Epoch-batched retirement journal.

    With [Config.epoch_batch] = K > 0, rootref releases whose local count
    hits zero park in the context's volatile buffer instead of paying a
    fence + flush each; {!flush_retired} retires up to K of them behind a
    single fence and one journal-line flush, sealing them first into the
    client's persistent retirement journal so recovery can finish (or
    discard) a partially-processed batch. See {!Layout.retire_count} for
    the journal layout and [Recovery.recover_journal] for the replay. *)

val enqueue : Ctx.t -> Cxlshm_shmem.Pptr.t -> unit
(** Park a zero-count rootref in the volatile buffer. The rootref must
    still be linked and [in_use] in shared memory. Caller checks
    {!is_full} and flushes; enqueueing past capacity is a program error. *)

val is_full : Ctx.t -> bool
val pending : Ctx.t -> int

val flush_retired : Ctx.t -> retire_one:(Cxlshm_shmem.Pptr.t -> unit) -> unit
(** Seal the buffered rootrefs into the journal (slots + era, one fence,
    count word as commit point, journal line flushed), run [retire_one] on
    each in order, drain the deferred write-back queue, then clear and
    flush the journal. [retire_one] must fully retire the entry — detach
    the object, reclaim the block on zero — and clear the rootref's
    [in_use] as its final step, which is the per-entry completion marker
    recovery relies on. With an empty buffer, just drains write-backs. *)

val read_journal : Ctx.t -> cid:int -> Cxlshm_shmem.Pptr.t array option
(** The sealed batch of client [cid], oldest first, or [None] when no
    batch is in flight (count 0 or out of range — a torn seal never
    presents as a valid batch because the count store is ordered after the
    slot stores by the seal fence). *)

val clear_journal : Ctx.t -> cid:int -> unit
(** Durably clear client [cid]'s journal (store 0 + flush). *)
