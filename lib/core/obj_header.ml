module Word = Cxlshm_shmem.Word

(* 10 + 34 + 18 = 62 bits: up to 1023 clients, ~1.7e10 eras per client,
   262k simultaneous references per object. *)
let f_lcid = Word.field ~shift:52 ~bits:10
let f_lera = Word.field ~shift:18 ~bits:34
let f_cnt = Word.field ~shift:0 ~bits:18

let max_era = Word.max_value f_lera
let max_ref_cnt = Word.max_value f_cnt
let max_clients_representable = Word.max_value f_lcid - 1

type t = { lcid : int option; lera : int; ref_cnt : int }

let zero = { lcid = None; lera = 0; ref_cnt = 0 }

let pack { lcid; lera; ref_cnt } =
  let lcid_field = match lcid with None -> 0 | Some c -> c + 1 in
  Word.set f_lcid (Word.set f_lera (Word.set f_cnt 0 ref_cnt) lera) lcid_field

let unpack w =
  let lcid_field = Word.get f_lcid w in
  {
    lcid = (if lcid_field = 0 then None else Some (lcid_field - 1));
    lera = Word.get f_lera w;
    ref_cnt = Word.get f_cnt w;
  }

let make ~lcid ~lera ~ref_cnt = pack { lcid = Some lcid; lera; ref_cnt }
let ref_cnt_of w = Word.get f_cnt w
let lera_of w = Word.get f_lera w

let lcid_of w =
  let f = Word.get f_lcid w in
  if f = 0 then None else Some (f - 1)

(* Meta word: kind (8 bits), emb_cnt (26 bits), data_words (26 bits). *)
let f_kind = Word.field ~shift:0 ~bits:8
let f_emb = Word.field ~shift:8 ~bits:26
let f_dw = Word.field ~shift:34 ~bits:26

let pack_meta ~kind ~emb_cnt ~data_words =
  Word.set f_dw (Word.set f_emb (Word.set f_kind 0 kind) emb_cnt) data_words

let meta_kind w = Word.get f_kind w
let meta_emb_cnt w = Word.get f_emb w
let meta_data_words w = Word.get f_dw w
let max_meta_data_words = Word.max_value f_dw

let header_of_obj p = p
let meta_of_obj p = p + 1
let data_of_obj p = p + Config.header_words

let emb_slot p i =
  if i < 0 then invalid_arg "Obj_header.emb_slot: negative index";
  data_of_obj p + i
