(** The schedule explorer: a deterministic executor over {!Sched} fibers
    plus three exploration strategies and exact replay.

    A run owns one freshly built model instance. At every branch point (a
    yield accepted by the model's [branch] filter) a chooser picks the next
    decision: resume a client, or spend the single crash budget killing
    the current one at its yield. When no client remains runnable the
    instance's oracle runs; anything it raises is a found bug carrying the
    full decision list, which replays bit-identically. *)

type instance = {
  clients : (unit -> unit) array;
  check : crashed:int list -> unit;
      (** Post-run oracle; [crashed] lists client indices killed by the
          schedule, in kill order. Raise to report an invariant
          violation. *)
}

type model = {
  name : string;
  make : unit -> instance;
  branch : Sched.point -> bool;
      (** Which yield points are scheduling decisions. Non-matching yields
          auto-continue the running client (they still burn fuel). *)
}

type outcome =
  | Pass
  | Fail of string
  | Diverged  (** fuel exhausted — livelock under this schedule, pruned *)

type run = {
  decisions : Schedule.decision list;
  outcome : outcome;
  steps : int;
}

type choice = {
  step : int;  (** branch-point index within the run, 0-based *)
  current : int option;  (** last-run client, when still runnable *)
  runnable : int list;  (** ascending *)
  crash_used : bool;
}

val execute :
  model -> max_steps:int -> choose:(choice -> Schedule.decision) -> run
(** One run under an arbitrary decision policy. [Run c] must name a
    runnable client; a second [Crash] in one run is a policy bug and
    raises [Invalid_argument]. *)

type failure = { schedule : Schedule.t; reason : string }

type report = {
  model : string;
  mode : string;
  schedules : int;
  passed : int;
  diverged : int;
  crashes_injected : int;
  failure : failure option;  (** first failure; exploration stops on it *)
}

val pp_report : Format.formatter -> report -> unit

val random :
  ?switch_prob:float ->
  ?crash_horizon:int ->
  seed:int ->
  schedules:int ->
  crash:bool ->
  max_steps:int ->
  model ->
  report
(** Seeded random walks. Each run derives its own RNG from
    [(seed, run index)], so any single run replays from the schedule
    string alone. *)

val pct :
  ?depth:int ->
  ?crash_horizon:int ->
  seed:int ->
  schedules:int ->
  crash:bool ->
  max_steps:int ->
  model ->
  report
(** Probabilistic concurrency testing (Burckhardt et al.): random client
    priorities plus [depth - 1] priority-drop change points per run. *)

val exhaustive :
  ?max_schedules:int ->
  preemptions:int ->
  crash:bool ->
  max_steps:int ->
  model ->
  report
(** CHESS-style iterative deviation: depth-first over decision prefixes,
    visiting every schedule with at most [preemptions] preemptive switches
    and at most one crash, each exactly once. *)

val replay : model -> max_steps:int -> Schedule.t -> run
(** Re-execute a recorded schedule (then the default policy past its end).
    Raises [Invalid_argument] if the schedule names a different model. *)
