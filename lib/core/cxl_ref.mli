(** CXLRef — the local smart-pointer handle (§3.1, Fig 2).

    A CXLRef lives in the client's local (OCaml-heap) memory and points to a
    RootRef in the shared pool, which in turn points to the CXLObj. Cloning
    within the same thread only bumps the RootRef's local count — plain
    stores, no atomics, no flush (the cheap tier of the two-tiered count).
    CXLRef is deliberately {e not} thread safe: crossing a thread, process
    or machine boundary requires the explicit {!Transfer} queue protocol. *)

type t

val of_rootref : Ctx.t -> Cxlshm_shmem.Pptr.t -> t
(** Wrap an in-use RootRef already holding one local count for the caller. *)

val ctx : t -> Ctx.t
val rootref : t -> Cxlshm_shmem.Pptr.t

val obj : t -> Cxlshm_shmem.Pptr.t
(** The CXLObj behind this reference. Raises [Invalid_argument] on a
    dropped handle. *)

val clone : t -> t
(** Same-thread reference copy (RootRef local count +1). *)

val drop : t -> unit
(** Release this handle. At local count zero the RootRef is unlinked from
    the object via an era transaction and the object freed if that was its
    last reference. Dropping twice raises. *)

val is_live : t -> bool

(** {1 Data access}

    [get_addr]-style direct access (§3.1 step 5/6): offsets are in words
    relative to the object's data area. Embedded-reference slots occupy the
    first [emb_cnt] data words — the word accessors refuse to touch them;
    use {!set_emb}/{!get_emb}/{!change_emb}. *)

val data_addr : t -> Cxlshm_shmem.Pptr.t
val data_words : t -> int
val emb_cnt : t -> int
val read_word : t -> int -> int
val write_word : t -> int -> int -> unit
val cas_word : t -> int -> expected:int -> desired:int -> bool
val write_bytes : t -> bytes -> unit
(** Store a byte payload immediately after the embedded-ref slots. *)

val read_bytes : t -> len:int -> bytes

(** {1 Embedded references (§5.4)} *)

val get_emb : t -> int -> Cxlshm_shmem.Pptr.t
val set_emb : t -> int -> t -> unit
(** Link embedded slot [i] to the target handle's object (era transaction).
    The slot must currently be null; the caller must be the object's single
    writer. *)

val clear_emb : t -> int -> unit
(** Unlink slot [i] (era transaction); releases the child if that was its
    last reference. No-op on an already-null slot. *)

val change_emb : t -> int -> t -> unit
(** §5.4 atomic re-pointing of slot [i] to the target handle's object. *)
