(* The validator must actually detect each class of corruption it claims
   to detect — otherwise the fault-injection results are vacuous. Each test
   injects one violation by poking the arena directly. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena ())

let test_detects_wild_pointer () =
  let arena, a = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:16 ~emb_cnt:1 () in
  (* point the embedded slot into a segment header — a wild pointer *)
  Mem.unsafe_poke (Shm.mem arena)
    (Obj_header.emb_slot (Cxl_ref.obj r) 0)
    (Layout.segment_base (Shm.layout arena) 0 + 2);
  let v = Shm.validate arena in
  Alcotest.(check bool) "wild pointer found" true (v.Validate.wild_pointers > 0);
  Alcotest.(check bool) "not clean" false (Validate.is_clean v)

let test_detects_count_too_high () =
  let arena, a = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:16 () in
  let obj = Cxl_ref.obj r in
  let hdr = Obj_header.header_of_obj obj in
  let u = Obj_header.unpack (Mem.unsafe_peek (Shm.mem arena) hdr) in
  Mem.unsafe_poke (Shm.mem arena) hdr
    (Obj_header.pack { u with Obj_header.ref_cnt = u.Obj_header.ref_cnt + 1 });
  let v = Shm.validate arena in
  Alcotest.(check bool) "overcount found" true (v.Validate.count_mismatches > 0)

let test_detects_count_too_low () =
  let arena, a = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:16 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.set_emb r 0 child;
  Cxl_ref.drop child;
  (* child's count is 1 (the emb ref); force it to... the emb ref plus our
     poke makes holders=1 vs count=0 on a live reference — dangling *)
  let obj = Cxl_ref.get_emb r 0 in
  let hdr = Obj_header.header_of_obj obj in
  let u = Obj_header.unpack (Mem.unsafe_peek (Shm.mem arena) hdr) in
  ignore u;
  Mem.unsafe_poke (Shm.mem arena) hdr
    (Obj_header.pack { Obj_header.lcid = None; lera = 0; ref_cnt = 2 });
  let v = Shm.validate arena in
  Alcotest.(check bool) "mismatch found" true (v.Validate.count_mismatches > 0)

let test_detects_double_free () =
  let arena, a = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:16 () in
  let obj = Cxl_ref.obj r in
  Cxl_ref.drop r;
  (* push the freed block onto the page free list a second time by hand *)
  let lay = Shm.layout arena in
  let gid = Layout.page_gid_of_addr lay obj in
  let mem = Shm.mem arena in
  let head = Mem.unsafe_peek mem (Layout.page_free lay ~gid) in
  Alcotest.(check int) "freed block is the list head" obj head;
  (* make the block point at itself through another entry: duplicate it *)
  let next = Mem.unsafe_peek mem (obj + Config.header_words) in
  ignore next;
  Mem.unsafe_poke mem (obj + Config.header_words) obj;
  let v = Shm.validate arena in
  Alcotest.(check bool) "double free found" true (v.Validate.double_frees > 0)

let test_detects_leak () =
  let arena, a = setup () in
  let r = Shm.cxl_malloc a ~size_bytes:16 () in
  let obj = Cxl_ref.obj r in
  (* erase the RootRef's in_use bit so nothing references the live block,
     then zero the header: count 0, off-list, owner alive -> leak *)
  let rr = Cxl_ref.rootref r in
  Mem.unsafe_poke (Shm.mem arena) rr 0;
  Mem.unsafe_poke (Shm.mem arena) (Obj_header.header_of_obj obj) 0;
  let v = Shm.validate arena in
  Alcotest.(check bool) "leak found" true (v.Validate.leaks > 0)

let test_clean_arena_is_clean () =
  let arena, a = setup () in
  let rs = List.init 10 (fun i -> Shm.cxl_malloc a ~size_bytes:(8 * (i + 1)) ()) in
  let v = Shm.validate arena in
  Alcotest.(check bool) "live arena validates" true (Validate.is_clean v);
  Alcotest.(check int) "live objects" 10 v.Validate.live_objects;
  Alcotest.(check int) "rootrefs" 10 v.Validate.live_rootrefs;
  List.iter Cxl_ref.drop rs;
  let v = Shm.validate arena in
  Alcotest.(check int) "freed" 0 v.Validate.live_objects;
  Alcotest.(check bool) "still clean" true (Validate.is_clean v)

let suite =
  [
    Alcotest.test_case "detects wild pointer" `Quick test_detects_wild_pointer;
    Alcotest.test_case "detects count too high" `Quick test_detects_count_too_high;
    Alcotest.test_case "detects count too low" `Quick test_detects_count_too_low;
    Alcotest.test_case "detects double free" `Quick test_detects_double_free;
    Alcotest.test_case "detects leak" `Quick test_detects_leak;
    Alcotest.test_case "clean arena is clean" `Quick test_clean_arena_is_clean;
  ]
