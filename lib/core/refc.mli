(** Era-based non-blocking reference-count transactions (§4.3, Fig 4).

    A refcount maintenance operation is a distributed transaction over two
    separate locations: the object header (ModifyRefCnt — atomic, {e not}
    idempotent) and the reference word (ModifyRef — idempotent under the
    single-writer rule). The successful header CAS is the commit point; the
    CAS word carries [lcid] and [lera] so that, combined with the era
    matrix, a recovery service can decide whether a dead client's commit
    happened:

    - {b Condition 1}: the last object's header still reads
      [lo.lcid = i && lo.lera = Era\[i\]\[i\]].
    - {b Condition 2}: [Era\[i\]\[i\] <= max_{j≠i} Era\[j\]\[i\]] — some
      other client observed the committed era before overwriting the header.

    Condition 1 must be evaluated strictly before Condition 2 (fence in
    between).

    The [_as] variants run a transaction under another client's identity:
    the recovery service finishing a dead client's instruction stream. *)

exception Refcount_violation of string
(** Raised when a transaction would drop a count below zero or attach to a
    dead (count-zero) object — both indicate an application-level double
    free / wild pointer, which the simulator surfaces loudly. *)

val attach : Ctx.t -> ref_addr:Cxlshm_shmem.Pptr.t -> refed:Cxlshm_shmem.Pptr.t -> unit
(** Fig 4 (c): increment [refed]'s count and link [ref_addr] to it. *)

val try_attach :
  Ctx.t -> ref_addr:Cxlshm_shmem.Pptr.t -> refed:Cxlshm_shmem.Pptr.t -> bool
(** Like {!attach} but returns [false] instead of raising when [refed]'s
    count is already zero — for readers racing a writer's retirement (the
    object is never resurrected). The caller must hold hazard protection
    ({!Hazard.enter}) so the header it reads cannot be a recycled block. *)

val detach : Ctx.t -> ref_addr:Cxlshm_shmem.Pptr.t -> refed:Cxlshm_shmem.Pptr.t -> int
(** Decrement and unlink; returns the object's new reference count (the
    caller reclaims at zero — see {!Reclaim}). *)

val detach_batched :
  Ctx.t -> ref_addr:Cxlshm_shmem.Pptr.t -> refed:Cxlshm_shmem.Pptr.t -> int
(** Redo-free detach used under a sealed retirement-journal entry
    ({!Epoch}): same observe + CAS commit, but no per-attempt redo record,
    no crash points, and the unlink + era advance happen inside. Recovery
    decides the commit with Conditions 1 & 2 against the journal's era.
    Only sound while the entry's rootref is still [in_use] in the sealed
    journal. *)

val move :
  Ctx.t ->
  ref_addr:Cxlshm_shmem.Pptr.t ->
  rr:Cxlshm_shmem.Pptr.t ->
  refed:Cxlshm_shmem.Pptr.t ->
  unit
(** Count-neutral reference move (epoch-batched transfer receive): link
    RootRef [rr] to [refed] and clear [ref_addr], transferring the count
    the source word held — no header CAS. Recoverable via a [Move] redo
    record: destination linked means the source is cleared on resume,
    unlinked means the move never happened. *)

val change :
  Ctx.t ->
  ref_addr:Cxlshm_shmem.Pptr.t ->
  from_obj:Cxlshm_shmem.Pptr.t ->
  to_obj:Cxlshm_shmem.Pptr.t ->
  int
(** §5.4 atomic re-pointing of an embedded reference: two ModifyRefCnt
    sub-transactions (era bumped twice) and one ModifyRef. Returns
    [from_obj]'s new count. *)

val attach_as :
  Ctx.t -> as_cid:int -> ref_addr:Cxlshm_shmem.Pptr.t -> refed:Cxlshm_shmem.Pptr.t -> unit

val detach_as :
  Ctx.t -> as_cid:int -> ref_addr:Cxlshm_shmem.Pptr.t -> refed:Cxlshm_shmem.Pptr.t -> int

val committed : Ctx.t -> cid:int -> obj:Cxlshm_shmem.Pptr.t -> era:int -> bool
(** Conditions 1-then-2 for "did client [cid]'s ModifyRefCnt at [era] on
    [obj] commit?" — the recovery-side oracle. *)

val ref_cnt : Ctx.t -> Cxlshm_shmem.Pptr.t -> int
(** Current reference count of an object (plain load of its header). *)
