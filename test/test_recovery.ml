(* Directed recovery scenarios: dead-client reaping, transaction resume
   through Conditions 1 & 2, queue-endpoint cleanup, restartability. *)

open Cxlshm

let setup () =
  let arena = Shm.create ~cfg:Config.small () in
  (arena, Shm.join arena (), Shm.join arena ())

let check_clean arena label =
  let v = Shm.validate arena in
  Alcotest.(check bool)
    (label ^ ": " ^ String.concat "; " v.Validate.errors)
    true (Validate.is_clean v)

let test_reap_simple () =
  let arena, a, _b = setup () in
  (* A allocates objects and "crashes" without freeing anything. *)
  let _leaked = List.init 20 (fun _ -> Shm.cxl_malloc a ~size_bytes:32 ()) in
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  let r = Shm.recover arena ~failed_cid:a.Ctx.cid in
  Alcotest.(check int) "20 rootrefs released" 20 r.Recovery.rootrefs_released;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "nothing alive" 0 v.Validate.live_objects;
  check_clean arena "after reap"

let test_reap_preserves_shared () =
  let arena, a, b = setup () in
  (* A allocates and shares with B, then dies: B's reference must keep the
     object alive (the §1.2 double-free scenario). *)
  let ra = Shm.cxl_malloc a ~size_bytes:32 () in
  Cxl_ref.write_bytes ra (Bytes.of_string "survives");
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  Alcotest.(check bool) "sent" true (Transfer.send q ra = Transfer.Sent);
  let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
  let rb =
    match Transfer.receive qb with
    | Transfer.Received r -> r
    | _ -> Alcotest.fail "receive"
  in
  (* A dies. Note: no drop of ra / q — they are lost local handles. *)
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check string) "B still reads the data" "survives"
    (Bytes.to_string (Cxl_ref.read_bytes rb ~len:8));
  Alcotest.(check int) "exactly B's reference" 1 (Refc.ref_cnt b (Cxl_ref.obj rb));
  check_clean arena "shared object preserved";
  (* B finishes; everything must now be reclaimable. *)
  Transfer.close qb;
  Cxl_ref.drop rb;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "all reclaimed" 0 v.Validate.live_objects;
  check_clean arena "after B exits"

let test_resume_attach_after_cas () =
  let arena, a, _b = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  (* Crash right after the commit CAS of the attach: ModifyRefCnt done,
     ModifyRef pending. *)
  a.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
  (try
     Cxl_ref.set_emb parent 0 child;
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  (* The count was incremented but the slot not yet written. *)
  Alcotest.(check int) "count already 2" 2 (Refc.ref_cnt a (Cxl_ref.obj child));
  Alcotest.(check int) "slot still null" 0 (Cxl_ref.get_emb parent 0);
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  let r = Shm.recover arena ~failed_cid:a.Ctx.cid in
  Alcotest.(check bool) "txn resumed" true r.Recovery.resumed_txn;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "nothing alive" 0 v.Validate.live_objects;
  check_clean arena "resume attach"

let test_resume_not_committed () =
  let arena, a, _b = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  (* Crash after writing the redo record but before the CAS: the commit
     never happened, recovery must NOT redo the ModifyRef. *)
  a.Ctx.fault <- Fault.at Fault.Txn_after_redo ~nth:1;
  (try
     Cxl_ref.set_emb parent 0 child;
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  Alcotest.(check int) "count still 1" 1 (Refc.ref_cnt a (Cxl_ref.obj child));
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  let r = Shm.recover arena ~failed_cid:a.Ctx.cid in
  Alcotest.(check bool) "txn NOT resumed" false r.Recovery.resumed_txn;
  ignore (Shm.scan_leaking arena);
  check_clean arena "uncommitted attach"

let test_resume_change_mid () =
  let arena, a, _b = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let x = Shm.cxl_malloc a ~size_bytes:8 () in
  let y = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.set_emb parent 0 x;
  let x_obj = Cxl_ref.obj x and y_obj = Cxl_ref.obj y in
  (* Crash between the two CAS of the §5.4 change. *)
  a.Ctx.fault <- Fault.at Fault.Change_after_first_era ~nth:1;
  (try
     Cxl_ref.change_emb parent 0 y;
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  Alcotest.(check int) "x already decremented" 1 (Refc.ref_cnt a x_obj);
  Alcotest.(check int) "y not yet incremented" 1 (Refc.ref_cnt a y_obj);
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  let r = Shm.recover arena ~failed_cid:a.Ctx.cid in
  Alcotest.(check bool) "change resumed" true r.Recovery.resumed_txn;
  ignore (Shm.scan_leaking arena);
  check_clean arena "mid-change crash"

let test_alloc_crash_windows () =
  List.iter
    (fun point ->
      let arena, a, _b = setup () in
      (* Warm up so the crash hits the fast path, not page setup. *)
      let warm = Shm.cxl_malloc a ~size_bytes:32 () in
      Cxl_ref.drop warm;
      a.Ctx.fault <- Fault.at point ~nth:1;
      (try
         ignore (Shm.cxl_malloc a ~size_bytes:32 ());
         Alcotest.fail "expected crash"
       with Fault.Crashed _ -> ());
      a.Ctx.fault <- Fault.none;
      Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
      ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
      ignore (Shm.scan_leaking arena);
      check_clean arena ("alloc crash at " ^ Fault.point_name point))
    [
      Fault.Alloc_after_rootref;
      Fault.Alloc_after_link;
      Fault.Alloc_after_advance;
      Fault.Alloc_after_header;
    ]

let test_sender_crash_mid_send () =
  let arena, a, b = setup () in
  let ra = Shm.cxl_malloc a ~size_bytes:16 () in
  let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
  (* Crash after the slot attach but before publishing the tail: the
     reference is in the queue but ownership never transferred (§5.2). *)
  a.Ctx.fault <- Fault.at Fault.Send_after_attach ~nth:1;
  (try
     ignore (Transfer.send q ra);
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  (* B opens the (now sender-closed) queue: nothing must arrive. *)
  (match Transfer.open_from b ~sender:a.Ctx.cid with
  | None -> () (* queue already fully reclaimed *)
  | Some qb ->
      (match Transfer.receive qb with
      | Transfer.Drained | Transfer.Empty -> ()
      | Transfer.Received _ -> Alcotest.fail "unpublished send must not arrive");
      Transfer.close qb);
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "no stranded objects" 0 v.Validate.live_objects;
  check_clean arena "sender crash mid-send"

let test_receiver_crash_windows () =
  List.iter
    (fun point ->
      let arena, a, b = setup () in
      let ra = Shm.cxl_malloc a ~size_bytes:16 () in
      let q = Transfer.connect a ~receiver:b.Ctx.cid ~capacity:4 in
      Alcotest.(check bool) "sent" true (Transfer.send q ra = Transfer.Sent);
      Cxl_ref.drop ra;
      let qb = Option.get (Transfer.open_from b ~sender:a.Ctx.cid) in
      b.Ctx.fault <- Fault.at point ~nth:1;
      (try
         ignore (Transfer.receive qb);
         Alcotest.fail "expected crash"
       with Fault.Crashed _ -> ());
      b.Ctx.fault <- Fault.none;
      Client.declare_failed (Shm.service_ctx arena) ~cid:b.Ctx.cid;
      ignore (Shm.recover arena ~failed_cid:b.Ctx.cid);
      (* Sender closes; everything reclaimable. *)
      Transfer.close q;
      ignore (Shm.scan_leaking arena);
      let v = Shm.validate arena in
      Alcotest.(check int)
        ("no stranded objects at " ^ Fault.point_name point)
        0 v.Validate.live_objects;
      check_clean arena ("receiver crash at " ^ Fault.point_name point))
    [ Fault.Recv_after_attach; Fault.Recv_after_detach ]

let test_recovery_is_idempotent () =
  let arena, a, _b = setup () in
  let _ = List.init 10 (fun _ -> Shm.cxl_malloc a ~size_bytes:32 ()) in
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  (* Run it again: nothing further must change, nothing must break. *)
  let r2 = Shm.recover arena ~failed_cid:a.Ctx.cid in
  Alcotest.(check int) "second pass finds nothing" 0 r2.Recovery.rootrefs_released;
  ignore (Shm.scan_leaking arena);
  check_clean arena "double recovery"

let test_recovery_restartable () =
  (* Crash the recovery service itself mid-way, then restart it. *)
  let arena, a, _b = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:2 () in
  let c1 = Shm.cxl_malloc a ~size_bytes:8 () in
  let c2 = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.set_emb parent 0 c1;
  Cxl_ref.set_emb parent 1 c2;
  Cxl_ref.drop c1;
  Cxl_ref.drop c2;
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  let svc = Shm.service_ctx arena in
  let crashed = ref 0 in
  (* Keep crashing the service at successive points until it completes. *)
  let rec attempt n =
    if n > 200 then Alcotest.fail "recovery never completed";
    svc.Ctx.fault <- Fault.nth_point ~n;
    match Recovery.resume_interrupted svc with
    | exception Fault.Crashed _ ->
        incr crashed;
        svc.Ctx.fault <- Fault.none;
        attempt (n + 1)
    | Some _ -> ()
    | None -> (
        match Recovery.recover svc ~failed_cid:a.Ctx.cid with
        | _ -> ()
        | exception Fault.Crashed _ ->
            incr crashed;
            svc.Ctx.fault <- Fault.none;
            attempt (n + 1))
  in
  attempt 1;
  svc.Ctx.fault <- Fault.none;
  Alcotest.(check bool) "service did crash at least once" true (!crashed > 0);
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "everything reclaimed" 0 v.Validate.live_objects;
  check_clean arena "restartable recovery"

let test_crash_at_mid_phases_then_resume () =
  (* The directed version of restartability: the recovery service dies at
     the dedicated Recovery_mid_phases window — after transaction resume,
     before segment handling — and a fresh service finishes the job. *)
  let arena, a, _b = setup () in
  let parent = Shm.cxl_malloc a ~size_bytes:8 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:8 () in
  Cxl_ref.set_emb parent 0 child;
  Cxl_ref.drop child;
  (* A dies mid-transaction, leaving a redo log to resume. *)
  a.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
  (try Cxl_ref.clear_emb parent 0 with Fault.Crashed _ -> ());
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  let svc = Shm.service_ctx arena in
  svc.Ctx.fault <- Fault.at Fault.Recovery_mid_phases ~nth:1;
  (match Recovery.recover svc ~failed_cid:a.Ctx.cid with
  | _ -> Alcotest.fail "service must crash at recovery-mid-phases"
  | exception Fault.Crashed p ->
      Alcotest.(check string) "crashed at the new point" "recovery-mid-phases" p);
  svc.Ctx.fault <- Fault.none;
  (* The half-done recovery is recorded in the arena; a restarted service
     picks it up. *)
  (match Recovery.resume_interrupted svc with
  | Some _ -> ()
  | None -> Alcotest.fail "interrupted recovery not found on restart");
  Alcotest.(check bool) "nothing left to resume" true
    (Recovery.resume_interrupted svc = None);
  (* Run the client's recovery once more: it must be a no-op, not a
     double-apply. *)
  let r2 = Shm.recover arena ~failed_cid:a.Ctx.cid in
  Alcotest.(check int) "idempotent after resume" 0 r2.Recovery.rootrefs_released;
  ignore (Shm.scan_leaking arena);
  let v = Shm.validate arena in
  Alcotest.(check int) "everything reclaimed" 0 v.Validate.live_objects;
  check_clean arena "mid-phase crash resumed"

let test_segments_released_after_recovery () =
  let arena, a, _b = setup () in
  let before = Shm.free_segments arena in
  let _ = List.init 30 (fun _ -> Shm.cxl_malloc a ~size_bytes:64 ()) in
  Alcotest.(check bool) "segments consumed" true (Shm.free_segments arena < before);
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check int) "all segments back" before (Shm.free_segments arena)

let test_slot_reuse_after_recovery () =
  let arena, a, b = setup () in
  let cid = a.Ctx.cid in
  let _ = List.init 5 (fun _ -> Shm.cxl_malloc a ~size_bytes:16 ()) in
  Client.declare_failed (Shm.service_ctx arena) ~cid;
  ignore (Shm.recover arena ~failed_cid:cid);
  (* The slot must be reusable, and eras must stay monotone so Condition 2
     can never confuse the new incarnation with the old one. *)
  let a2 = Shm.join arena ~cid () in
  Alcotest.(check bool) "era continues, not reset" true
    (Era.self a2 > Era.initial);
  let r = Shm.cxl_malloc a2 ~size_bytes:16 () in
  (* Cross-client txn still behaves. *)
  let rrb = Alloc.alloc_rootref b in
  Refc.attach b ~ref_addr:(Rootref.pptr_slot rrb) ~refed:(Cxl_ref.obj r);
  Reclaim.release_rootref b rrb;
  Cxl_ref.drop r;
  ignore (Shm.scan_leaking arena);
  check_clean arena "slot reuse"

let suite =
  [
    Alcotest.test_case "reap simple" `Quick test_reap_simple;
    Alcotest.test_case "reap preserves shared" `Quick test_reap_preserves_shared;
    Alcotest.test_case "resume attach after CAS" `Quick test_resume_attach_after_cas;
    Alcotest.test_case "uncommitted not redone" `Quick test_resume_not_committed;
    Alcotest.test_case "resume change mid-way" `Quick test_resume_change_mid;
    Alcotest.test_case "alloc crash windows" `Quick test_alloc_crash_windows;
    Alcotest.test_case "sender crash mid-send" `Quick test_sender_crash_mid_send;
    Alcotest.test_case "receiver crash windows" `Quick test_receiver_crash_windows;
    Alcotest.test_case "recovery idempotent" `Quick test_recovery_is_idempotent;
    Alcotest.test_case "recovery restartable" `Quick test_recovery_restartable;
    Alcotest.test_case "crash at mid-phases, resume" `Quick test_crash_at_mid_phases_then_resume;
    Alcotest.test_case "segments released" `Quick test_segments_released_after_recovery;
    Alcotest.test_case "slot reuse after recovery" `Quick test_slot_reuse_after_recovery;
  ]
