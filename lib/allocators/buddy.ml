module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency

let name = "buddy (Lightning)"
let min_order = 1 (* 2 words *)

(* Layout: +0 lock, +1.. free-list heads per order, then order map (one
   word per min-granule recording {order+1, allocated flag}), then the
   heap. Free blocks chain through their first word. *)
type t = {
  mem : Mem.t;
  max_order : int;
  heads_base : int;
  order_map_base : int;
  heap_base : int;
  heap_words : int;
  threads : int;
  serial : Stats.t;  (** everything happens under the global lock *)
  lock : Mutex.t;  (** host-side mutex standing in for the spinlock *)
}

type thread = { a : t; st : Stats.t }

let tier _ = Latency.Local_numa

let create ~words ~threads =
  (* Pick the largest power-of-two heap that fits with its metadata. *)
  let rec pick order =
    let heap = 1 lsl order in
    let granules = heap lsr min_order in
    if 1 + (order + 1) + granules + heap > words then pick (order - 1)
    else (order, heap, granules)
  in
  let max_order, heap_words, granules = pick 40 in
  if max_order <= min_order then invalid_arg "Buddy.create: arena too small";
  let mem = Mem.create ~tier:Latency.Local_numa ~words () in
  let heads_base = 1 in
  let order_map_base = heads_base + max_order + 1 in
  let heap_base = order_map_base + granules in
  let t =
    {
      mem;
      max_order;
      heads_base;
      order_map_base;
      heap_base;
      heap_words;
      threads;
      serial = Stats.create ();
      lock = Mutex.create ();
    }
  in
  (* One block of the maximal order. *)
  let st = t.serial in
  Mem.store mem ~st (heads_base + max_order) t.heap_base;
  Mem.store mem ~st t.heap_base 0;
  t

let thread a tid =
  if tid < 0 || tid >= a.threads then invalid_arg "Buddy.thread";
  { a; st = Stats.create () }

let stats th = th.st
let serial_stats a = a.serial

let granule a b = (b - a.heap_base) lsr min_order

let set_meta a ~st b ~order ~allocated =
  Mem.store a.mem ~st (a.order_map_base + granule a b)
    (((order + 1) lsl 1) lor (if allocated then 1 else 0))

let get_meta a ~st b =
  let v = Mem.load a.mem ~st (a.order_map_base + granule a b) in
  ((v lsr 1) - 1, v land 1 = 1)

let order_of_bytes size_bytes =
  let words = max 2 ((size_bytes + 7) / 8) in
  let rec go o = if 1 lsl o >= words then o else go (o + 1) in
  go min_order

let head_addr a o = a.heads_base + o

let pop_head a ~st o =
  let h = Mem.load a.mem ~st (head_addr a o) in
  if h = 0 then None
  else begin
    Mem.store a.mem ~st (head_addr a o) (Mem.load a.mem ~st h);
    Some h
  end

let push_head a ~st o b =
  Mem.store a.mem ~st b (Mem.load a.mem ~st (head_addr a o));
  Mem.store a.mem ~st (head_addr a o) b

let rec take a ~st o =
  if o > a.max_order then raise Out_of_memory;
  match pop_head a ~st o with
  | Some b -> b
  | None ->
      (* split a larger block *)
      let big = take a ~st (o + 1) in
      let half = big + (1 lsl o) in
      set_meta a ~st half ~order:o ~allocated:false;
      push_head a ~st o half;
      big

(* The entire operation holds the global lock — Lightning's design. The
   host mutex provides mutual exclusion between domains; the CAS on word 0
   models the spinlock acquisition cost. *)
let with_lock th f =
  let a = th.a in
  Mutex.lock a.lock;
  let rec spin () =
    if not (Mem.cas a.mem ~st:a.serial 0 ~expected:0 ~desired:1) then spin ()
  in
  spin ();
  Fun.protect
    ~finally:(fun () ->
      Mem.store a.mem ~st:a.serial 0 0;
      Mutex.unlock a.lock)
    f

let alloc th ~size_bytes =
  with_lock th (fun () ->
      let a = th.a in
      let o = order_of_bytes size_bytes in
      let b = take a ~st:a.serial o in
      set_meta a ~st:a.serial b ~order:o ~allocated:true;
      b)

let rec coalesce a ~st b o =
  if o >= a.max_order then push_head a ~st o b
  else begin
    let buddy = a.heap_base + ((b - a.heap_base) lxor (1 lsl o)) in
    let border, balloc = get_meta a ~st buddy in
    if (not balloc) && border = o then begin
      (* unlink buddy from its free list (linear scan, as in simple
         implementations) *)
      let rec unlink prev cur =
        if cur = 0 then false
        else if cur = buddy then begin
          let next = Mem.load a.mem ~st cur in
          (if prev = 0 then Mem.store a.mem ~st (head_addr a o) next
           else Mem.store a.mem ~st prev next);
          true
        end
        else unlink cur (Mem.load a.mem ~st cur)
      in
      if unlink 0 (Mem.load a.mem ~st (head_addr a o)) then begin
        let merged = min b buddy in
        set_meta a ~st merged ~order:(o + 1) ~allocated:false;
        coalesce a ~st merged (o + 1)
      end
      else push_head a ~st o b
    end
    else push_head a ~st o b
  end

let free th b =
  with_lock th (fun () ->
      let a = th.a in
      let o, allocated = get_meta a ~st:a.serial b in
      if not allocated then invalid_arg "Buddy.free: double free";
      set_meta a ~st:a.serial b ~order:o ~allocated:false;
      coalesce a ~st:a.serial b o)

let write_word th b i v = Mem.store th.a.mem ~st:th.st (b + i) v
let read_word th b i = Mem.load th.a.mem ~st:th.st (b + i)
