(** rpc_msg layout and zero-copy views (§6.3.1).

    A call with I input arguments is one CXLObj with I+1 embedded
    references — the first I link the inputs, the last links the output
    object — plus two plain words (function id, argument count). The server
    accesses arguments through the embedded references directly: no copy,
    no serialisation.

    A {!view} is a raw window onto an object the viewer does not own a
    counted reference to — legal exactly while something else (here: the
    rpc_msg's embedded reference) keeps it alive. *)

type view

val view : Cxlshm.Ctx.t -> Cxlshm_shmem.Pptr.t -> view
val view_of_ref : Cxlshm.Cxl_ref.t -> view
val obj : view -> Cxlshm_shmem.Pptr.t
val data_words : view -> int
val emb_cnt : view -> int
val read_word : view -> int -> int
val write_word : view -> int -> int -> unit
val read_bytes : view -> len:int -> bytes
val write_bytes : view -> bytes -> unit

val read_bytes_at : view -> word_off:int -> len:int -> bytes
(** Byte payload starting [word_off] words into the data area. *)

val write_bytes_at : view -> word_off:int -> bytes -> unit

(** {1 rpc_msg} *)

val msg_data_words : nargs:int -> int
(** I+1 embedded slots + three plain words: function id, argument count
    and the completion status the server raises when the in-place results
    are ready. *)

val build :
  Cxlshm.Ctx.t -> func:int -> args:Cxlshm.Cxl_ref.t list -> output:Cxlshm.Cxl_ref.t -> Cxlshm.Cxl_ref.t
(** Allocate and populate an rpc_msg (the §6.3.1 client steps 1-3). *)

val func : view -> int
val nargs : view -> int
val arg : view -> int -> view
(** Zero-copy view of input argument [i]. *)

val output : view -> view

val status : view -> int
val set_status : view -> int -> unit
(** Completion flag (0 = pending); the client polls it directly — no
    response message, no copy. *)
