(** Minimal protobuf-style wire format for the pass-by-value RPC baseline.

    The paper's Fig 8 baseline uses "Simple RPC protobuf"; we reproduce the
    essential costs: varint-encoded tag/length framing and a full copy of
    every argument into the wire buffer (and back out on the other side). *)

type writer
type reader

val writer : unit -> writer
val contents : writer -> bytes
val put_varint : writer -> int -> unit
val put_bytes : writer -> bytes -> unit
(** Length-prefixed byte field. *)

val reader : bytes -> reader
val get_varint : reader -> int
val get_bytes : reader -> bytes
val remaining : reader -> int

(** {1 RPC envelope} *)

type envelope = { func : int; args : bytes list }

val encode : envelope -> bytes
val decode : bytes -> envelope
