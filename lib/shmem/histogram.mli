(** Log-bucketed latency histograms keyed by operation class.

    Fed by the span machinery in the core ([Trace]): a span measures one
    operation's modeled nanoseconds and records the duration into the
    histogram of its op class. Buckets double (bucket [i >= 1] covers
    [[2^(i-1), 2^i)] ns), so quantiles are exact to within one bucket
    and [record] is an array increment. *)

(** {1 Operation classes} *)

type op =
  | Alloc_small  (** size-class object allocation (RootRef + carve) *)
  | Alloc_huge  (** contiguous-segment huge-object allocation *)
  | Rootref  (** standalone RootRef allocation *)
  | Refc_attach  (** era-transaction attach *)
  | Refc_detach  (** era-transaction detach *)
  | Transfer_send  (** queue send (attach + tail publish) *)
  | Transfer_recv  (** queue receive (attach + detach + head advance) *)
  | Recovery_scan  (** recovery phases / POTENTIAL_LEAKING scan *)

val num_ops : int
val op_index : op -> int
val op_of_index : int -> op
val all_ops : op list
val op_name : op -> string
val op_of_name : string -> op option

(** {1 Histograms} *)

type t

val num_buckets : int
val create : unit -> t
val reset : t -> unit

val record : t -> float -> unit
(** Record one duration in nanoseconds (negative values clamp to 0). *)

val count : t -> int
val sum_ns : t -> float
val min_ns : t -> float
val max_ns : t -> float
val mean_ns : t -> float

val percentile : t -> float -> float
(** [percentile t q] for [q] in [[0, 1]]: linear interpolation inside the
    winning log bucket, clamped to the observed min/max. 0 when empty. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val merge : into:t -> t -> unit

val bucket_of_ns : float -> int
(** Exposed for tests. *)

(** {1 Per-op sets} *)

val create_set : unit -> t array
(** One histogram per op class, indexed by {!op_index}. *)

val merge_set : into:t array -> t array -> unit
val pp : Format.formatter -> t -> unit
