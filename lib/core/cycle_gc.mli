(** Cycle collection: the paper's deferred tracing collector (§4.1).

    Reference counting cannot reclaim cycles of embedded references; the
    paper explicitly leaves tracing collection as future work and frames GC
    and refcounting as "distinct tools, each having its unique
    applications". This module is that complementary tool: a
    {e stop-the-world} mark-and-sweep over the shared pool that reclaims
    reference-counted garbage cycles.

    Roots are everything the validator recognises as a reference holder:
    in-use RootRefs, queue-directory entries (ring contents are embedded
    references of the queue object and get traced), and named persistent
    roots. Any block with a positive count that is unreachable from those
    roots is cycle garbage: its count can never reach zero.

    Unlike CXL-SHM's recovery this {b is} blocking and heap-proportional —
    exactly the §4.1 trade-off — so it is meant to run rarely, at
    quiescent points (no in-flight operations), as a leak backstop. *)

type report = {
  roots : int;
  marked : int;  (** live blocks reached from the roots *)
  collected : int;  (** unreachable count>0 blocks reclaimed (cycle garbage) *)
}

val pp_report : Format.formatter -> report -> unit

val collect : Ctx.t -> report
(** Run a full collection. The caller must guarantee quiescence. *)
