(** Common operation vocabulary of the key-value benchmarks (Fig 10).

    Keys are non-negative integers (hashed into buckets by each store);
    values are fixed-width word payloads whose width is a store parameter
    (modelling YCSB-style value sizes). *)

type op =
  | Read of int
  | Update of int * int  (** key, value seed *)
  | Insert of int * int
  | Delete of int
  | Rmw of int * int
      (** key, delta: read-modify-write — read the current value and write
          a function of it back (YCSB-F). Distinct from [Update]: the
          written value depends on the read, so the driver must issue a get
          followed by a put against the same record. *)

let op_key = function
  | Read k | Update (k, _) | Insert (k, _) | Delete k | Rmw (k, _) -> k

let is_write = function
  | Read _ -> false
  | Update _ | Insert _ | Delete _ | Rmw _ -> true

(** Interface every store implementation exposes to the driver. *)
module type S = sig
  type store
  type handle

  val name : string

  val get : handle -> key:int -> int option
  (** First value word, or [None] if absent. *)

  val put : handle -> key:int -> value:int -> unit
  (** Insert or update in place. *)

  val delete : handle -> key:int -> bool
end
