(** The built-in models: small concurrent protocols whose interleavings
    (and crash points) the explorer enumerates, each paired with the
    oracle that must hold afterwards.

    The arena models ([transfer], [refc]) recover every crashed client the
    way the monitor would, then require a leak-free, count-consistent,
    fsck-clean pool and a causally sane era matrix. *)

val spsc : ?capacity:int -> ?values:int -> unit -> Explore.model
(** Producer pushes [1..values] through a [capacity]-slot ring, consumer
    pops them. Branches at {e every} word access. Oracle: consecutive
    FIFO prefix, head/tail sanity. *)

val transfer : ?capacity:int -> ?values:int -> unit -> Explore.model
(** Exactly-once reference handoff between two arena clients through a
    {!Cxlshm.Transfer} queue. Branches at labeled crash points and poll
    yields. *)

val refc : ?rounds:int -> unit -> Explore.model
(** Two clients churning parent/child object graphs: era refcount
    transactions plus shared-allocator contention. Branches at labeled
    crash points and poll yields. *)

val all : unit -> Explore.model list

val find : string -> Explore.model
(** Raises [Invalid_argument] for an unknown model name. *)
