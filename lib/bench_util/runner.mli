(** Parallel execution and time accounting for the benchmark harness.

    Every experiment reports two clocks:

    - {b wall time}: real elapsed time of the simulator run (OCaml domains
      doing real CAS on real shared memory);
    - {b modeled time}: per-thread memory-event counts priced by the
      {!Cxlshm_shmem.Latency} model — the clock whose *shape* is comparable
      with the paper's hardware numbers.

    For lock-free workloads modeled time is the max across threads (they
    proceed in parallel); serialised work (e.g. Lightning's global lock)
    adds its serial component on top. *)

type result = {
  ops : int;            (** total operations completed *)
  wall_ns : float;
  modeled_ns : float;
  threads : int;
}

val mops : result -> float
(** Million ops/s under the modeled clock — the paper's reporting unit. *)

val wall_mops : result -> float

val run_parallel :
  threads:int ->
  ops_per_thread:int ->
  model:Cxlshm_shmem.Latency.t ->
  ?serial:(unit -> Cxlshm_shmem.Stats.t) ->
  (int -> Cxlshm_shmem.Stats.t) ->
  (int -> unit) ->
  result
(** [run_parallel ~threads ~ops_per_thread ~model stats_of body] spawns
    [threads] domains running [body tid], then prices [stats_of tid] with
    [model]. [serial] (sampled after the run) contributes serialised time.
    With [threads = 1] the body runs inline (deterministic). *)

val time_wall : (unit -> 'a) -> 'a * float
(** [(value, ns)] of a single call. *)
