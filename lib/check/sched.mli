(** Effect-based cooperative fibers — the mechanism under the explorer.

    A logical client runs as a coroutine; every shared-memory access of a
    [Mem.Sched]-wrapped pool and every labeled crash point performs the
    {!Yield} effect, suspending the fiber {e before} the access executes and
    returning its continuation to the scheduler. Single-domain only. *)

type point =
  | Access of Cxlshm_shmem.Backend_sched.access
      (** Raw word operation about to execute on the instrumented pool. *)
  | Crash_point of Cxlshm.Fault.point
      (** Labeled critical window ({!Cxlshm.Ctx.crash_point} call site). *)
  | Label of string  (** Explicit model yield (see {!yield}). *)

val point_name : point -> string

type _ Effect.t += Yield : point -> unit Effect.t

val yield : string -> unit
(** Explicit scheduling point for model code — put one in every poll/retry
    loop so coarse-granularity exploration can still preempt the spinner. *)

type run_result =
  | Yielded of point * (unit, run_result) Effect.Deep.continuation
  | Completed
  | Raised of exn

val start : (unit -> unit) -> run_result
(** Run a fiber until its first yield, completion, or uncaught exception.
    Installs the memory/crash-point hooks for the duration. *)

val resume : (unit, run_result) Effect.Deep.continuation -> run_result
(** Continue a suspended fiber; the pending access then executes. *)

val kill : (unit, run_result) Effect.Deep.continuation -> run_result
(** Crash a suspended fiber: raises {!Cxlshm.Fault.Crashed} at its yield
    point, so the pending access never executes and the fiber unwinds as if
    the client died there. May return [Yielded] if cleanup code touches the
    pool while unwinding — keep resuming until terminal. *)
