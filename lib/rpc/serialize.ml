type writer = Buffer.t
type reader = { buf : bytes; mutable pos : int }

let writer () = Buffer.create 64
let contents w = Buffer.to_bytes w

let rec put_varint w v =
  if v < 0 then invalid_arg "Serialize.put_varint: negative";
  if v < 0x80 then Buffer.add_char w (Char.chr v)
  else begin
    Buffer.add_char w (Char.chr (0x80 lor (v land 0x7f)));
    put_varint w (v lsr 7)
  end

let put_bytes w b =
  put_varint w (Bytes.length b);
  Buffer.add_bytes w b

let reader buf = { buf; pos = 0 }

let get_varint r =
  let rec go shift acc =
    if r.pos >= Bytes.length r.buf then failwith "Serialize: truncated varint";
    let c = Char.code (Bytes.get r.buf r.pos) in
    r.pos <- r.pos + 1;
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_bytes r =
  let len = get_varint r in
  if r.pos + len > Bytes.length r.buf then failwith "Serialize: truncated bytes";
  let b = Bytes.sub r.buf r.pos len in
  r.pos <- r.pos + len;
  b

let remaining r = Bytes.length r.buf - r.pos

type envelope = { func : int; args : bytes list }

let encode e =
  let w = writer () in
  put_varint w e.func;
  put_varint w (List.length e.args);
  List.iter (put_bytes w) e.args;
  contents w

let decode buf =
  let r = reader buf in
  let func = get_varint r in
  let n = get_varint r in
  let args = List.init n (fun _ -> get_bytes r) in
  { func; args }
