exception Wild_pointer of { addr : int; words : int }

type t = {
  cells : int Atomic.t array;
  tier : Latency.tier;
  model : Latency.t;
}

let words_per_line = 8 (* 64-byte cache line / 8-byte words *)

let create ?(tier = Latency.Cxl) ~words () =
  if words <= 0 then invalid_arg "Mem.create: words must be positive";
  {
    cells = Array.init words (fun _ -> Atomic.make 0);
    tier;
    model = Latency.of_tier tier;
  }

let words t = Array.length t.cells
let tier t = t.tier
let cost_model t = t.model
let in_bounds t p = p >= 0 && p < Array.length t.cells

let check t p =
  if not (in_bounds t p) then
    raise (Wild_pointer { addr = p; words = Array.length t.cells })

(* Classify the access: CPU-cache hit (CXL memory is cacheable, so a
   recently-touched line costs an L1/L2 access), sequential (same or next
   line — the prefetcher hides stream crossings), or a random link round
   trip — mirroring Table 1's seq/rand split. *)
let count_access (st : Stats.t) p =
  let line = p / words_per_line in
  let cached = Stats.note_line st line in
  (if line = st.last_line || line = st.last_line + 1 then
     (* streaming: same or next line — L1-resident or prefetched *)
     st.seq_accesses <- st.seq_accesses + 1
   else if cached then st.cache_hits <- st.cache_hits + 1
   else st.rand_accesses <- st.rand_accesses + 1);
  st.last_line <- line

let load t ~st:(st : Stats.t) p =
  check t p;
  count_access st p;
  Atomic.get t.cells.(p)

let store t ~st:(st : Stats.t) p v =
  check t p;
  count_access st p;
  Atomic.set t.cells.(p) v

let cas t ~st:(st : Stats.t) p ~expected ~desired =
  check t p;
  (* a CAS on a line this client already caches is a local atomic; a cold
     or stolen line pays the coherence round trip *)
  if Stats.note_line st (p / words_per_line) then
    st.cas_hit_ops <- st.cas_hit_ops + 1
  else st.cas_ops <- st.cas_ops + 1;
  st.last_line <- p / words_per_line;
  let ok = Atomic.compare_and_set t.cells.(p) expected desired in
  if not ok then st.cas_failures <- st.cas_failures + 1;
  ok

let fetch_add t ~st:(st : Stats.t) p n =
  check t p;
  if Stats.note_line st (p / words_per_line) then
    st.cas_hit_ops <- st.cas_hit_ops + 1
  else st.cas_ops <- st.cas_ops + 1;
  st.last_line <- p / words_per_line;
  Atomic.fetch_and_add t.cells.(p) n

let fence _t ~st:(st : Stats.t) =
  st.fences <- st.fences + 1

let flush t ~st:(st : Stats.t) p =
  check t p;
  st.flushes <- st.flushes + 1

let fill t ~st:(st : Stats.t) p ~len v =
  if len < 0 then invalid_arg "Mem.fill: negative length";
  check t p;
  if len > 0 then check t (p + len - 1);
  for i = p to p + len - 1 do
    count_access st i;
    Atomic.set t.cells.(i) v
  done

let load_bytes_word n = (n + 6) / 7
let bytes_words n = (n + 6) / 7

(* 7 payload bytes per 63-bit word keeps every stored word non-negative,
   which the rest of the system assumes of packed header words too. *)
let write_bytes t ~st:(st : Stats.t) p b =
  let n = Bytes.length b in
  let nwords = bytes_words n in
  if nwords > 0 then begin
    check t p;
    check t (p + nwords - 1)
  end;
  for w = 0 to nwords - 1 do
    let acc = ref 0 in
    for k = 6 downto 0 do
      let idx = (w * 7) + k in
      let byte = if idx < n then Char.code (Bytes.unsafe_get b idx) else 0 in
      acc := (!acc lsl 8) lor byte
    done;
    count_access st (p + w);
    Atomic.set t.cells.(p + w) !acc
  done

let read_bytes t ~st:(st : Stats.t) p ~len =
  if len < 0 then invalid_arg "Mem.read_bytes: negative length";
  let nwords = bytes_words len in
  if nwords > 0 then begin
    check t p;
    check t (p + nwords - 1)
  end;
  let b = Bytes.create len in
  for w = 0 to nwords - 1 do
    count_access st (p + w);
    let v = Atomic.get t.cells.(p + w) in
    for k = 0 to 6 do
      let idx = (w * 7) + k in
      if idx < len then
        Bytes.unsafe_set b idx (Char.chr ((v lsr (8 * k)) land 0xff))
    done
  done;
  b

let blit t ~st ~src ~dst ~len =
  if len < 0 then invalid_arg "Mem.blit: negative length";
  if len > 0 then begin
    check t src;
    check t (src + len - 1);
    check t dst;
    check t (dst + len - 1)
  end;
  for i = 0 to len - 1 do
    count_access st (src + i);
    let v = Atomic.get t.cells.(src + i) in
    count_access st (dst + i);
    Atomic.set t.cells.(dst + i) v
  done

let unsafe_peek t p =
  check t p;
  Atomic.get t.cells.(p)

let unsafe_poke t p v =
  check t p;
  Atomic.set t.cells.(p) v

let snapshot t = Array.map Atomic.get t.cells

let restore t words =
  if Array.length words <> Array.length t.cells then
    invalid_arg "Mem.restore: size mismatch";
  Array.iteri (fun i v -> Atomic.set t.cells.(i) v) words
