(** Standalone failure monitor (§3.2).

    Detects dead clients by watching their heartbeat counters and kicks the
    recovery service asynchronously. Detection is orthogonal to the paper's
    contribution (a hardware RAS feature fences dead clients in the real
    system); here a client that stops heartbeating for [misses] consecutive
    checks is declared failed. Tests may also declare failures directly. *)

type t

val create : mem:Cxlshm_shmem.Mem.t -> lay:Layout.t -> ?misses:int -> unit -> t

val check_once : t -> int list
(** Sample heartbeats; returns the clients newly suspected dead (they are
    declared [Failed] but not yet recovered). *)

val recover_suspects : t -> (int * Recovery.report) list
(** Run recovery for every client currently in [Failed] state. *)

val run_in_domain : t -> interval:float -> unit Domain.t * bool Atomic.t
(** Spawn the monitor loop in its own domain; set the returned flag to stop
    it. The loop checks, recovers, and runs the POTENTIAL_LEAKING scan. *)
