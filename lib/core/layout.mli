(** Word-level layout of the shared arena (Fig 3 of the paper).

    Everything the allocator and the recovery service need lives *inside*
    the shared arena, so recovery can repair the pool using shared state
    only. Layout, in ascending addresses:

    {v
    word 0            reserved (pptr 0 == null)
    arena header      geometry + magic
    SegmentAllocationVec   one meta record per segment
    ClientLocalVec         one ClientLocalState per client
    queue directory        well-known transfer-queue registry (§5.2)
    recovery area          persistent DFS worklist + resume cursor
    trace rings            per-client event rings (observability layer)
    segments               segment header (page metas) + page areas
    v}

    All functions are pure offset computations over a {!Config.t}. *)

type t = private {
  cfg : Config.t;
  num_classes : int;
  arena_hdr : int;
  segvec_base : int;
  clientvec_base : int;
  client_state_words : int;
  domvec_base : int;
  queuedir_base : int;
  locks_base : int;
  roots_base : int;
  recovery_base : int;
  adopt_base : int;
  trace_base : int;
  trace_ring_words : int;
  segments_base : int;
  segment_words : int;
  seg_hdr_words : int;
  total_words : int;
}

val make : Config.t -> t

(** {1 Arena header fields} *)

val magic : int
val hdr_magic : t -> Cxlshm_shmem.Pptr.t
val hdr_epoch : t -> Cxlshm_shmem.Pptr.t

val hdr_dev_degraded : t -> Cxlshm_shmem.Pptr.t
(** Shared degraded-device bitmap: bit [d] set means device [d] exhausted a
    retry budget (or faulted persistently) for some client and allocation
    should steer new segment claims away from it until it is serviced. *)

val hdr_lease_clock : t -> Cxlshm_shmem.Pptr.t
(** The logical lease clock: a monotone tick counter advanced
    (fetch-and-add) by every monitor pass. All lease deadlines — client
    leases and the monitor leader lease — are ticks of this clock, never
    wall time, so lease expiry is deterministic under the explorer and a
    dead leader's lease still expires as long as {e any} monitor ticks. *)

val hdr_leader : t -> Cxlshm_shmem.Pptr.t
(** Monitor leader word: [{monitor id + 1, deadline tick}] packed
    ({!leader_pack}) so election (CAS 0 → mine), renewal (CAS mine → mine
    with a later deadline) and deposition of an expired leader (CAS
    theirs → mine) are each one CAS. 0 = no leader. *)

val leader_pack : id:int -> deadline:int -> int
val leader_unpack : int -> (int * int) option
(** [(monitor id, deadline tick)], or [None] for the no-leader word 0. *)

val hdr_evac_claim : t -> Cxlshm_shmem.Pptr.t
(** Evacuation claim word ([evacuator cid + 1], 0 = free): serialises
    evacuation sweeps across the monitor leader and clients relocating
    their own data. A claim whose holder is no longer alive is broken by
    the next claimant after resuming the migration journal. *)

val hdr_evac_from : t -> Cxlshm_shmem.Pptr.t
val hdr_evac_to : t -> Cxlshm_shmem.Pptr.t
(** Migration journal for the holder re-point phase of one object
    evacuation: while [hdr_evac_from] is non-zero, holders of [from] are
    being re-pointed to [to]. Written to-then-from, cleared from-then-to,
    so a non-zero [from] always pairs with a valid [to] — a crashed
    evacuator's successor re-points the {e remaining} holders at the same
    copy instead of cloning a second one (object identity is preserved). *)

val hdr_evac_guard : t -> Cxlshm_shmem.Pptr.t
(** The pptr slot of the evacuator's guard rootref for the in-flight
    migration: the one holder of [hdr_evac_from] a successor must {e not}
    re-point (it belongs to the dead evacuator's slot and its recovery
    releases it against the old block). *)

(** {1 SegmentAllocationVec}

    4 words per segment: occupied client id (0 = free, cid+1 otherwise),
    version (bumped on every ownership change, defeating ABA), state
    (see {!Seg_state}), and the cross-client free-list head (packed
    {tag, pptr} Treiber stack). *)

val seg_meta_words : int
val seg_occupied : t -> int -> Cxlshm_shmem.Pptr.t
val seg_version : t -> int -> Cxlshm_shmem.Pptr.t
val seg_state : t -> int -> Cxlshm_shmem.Pptr.t
val seg_client_free : t -> int -> Cxlshm_shmem.Pptr.t

(** {1 ClientLocalState}

    Per client: misc words (registration flag, machine/process ids,
    heartbeat), the client's row of the M×M era matrix, the redo-log record,
    the per-size-class current-page table and the current-segment cursor. *)

val client_state : t -> int -> Cxlshm_shmem.Pptr.t
val client_flags : t -> int -> Cxlshm_shmem.Pptr.t
val client_machine : t -> int -> Cxlshm_shmem.Pptr.t
val client_process : t -> int -> Cxlshm_shmem.Pptr.t
val client_heartbeat : t -> int -> Cxlshm_shmem.Pptr.t

val client_hazard : t -> int -> Cxlshm_shmem.Pptr.t
(** The client's announced hazard epoch (0 = not reading), used by
    {!Hazard} for safe memory reclamation of latch-free readers (§5.4). *)

val client_lease_deadline : t -> int -> Cxlshm_shmem.Pptr.t
(** Lease deadline tick of {!hdr_lease_clock}: the slot owner (via
    {!Client.heartbeat}) stores [now + Config.lease_ttl]; any peer
    observing [now > deadline] may suspect the client and, a further TTL
    later, condemn it — see {!Lease}. 0 = no lease (slot free or already
    released). *)

val client_lease_era : t -> int -> Cxlshm_shmem.Pptr.t
(** Lease grant era: bumped once per {!Client.init_slot}, so one
    registration = one era. Guards recycled slots (a suspect/condemn
    decision taken against era [e] is void once the slot re-registers at
    [e+1]) and keys {!client_dump_claim}. *)

val client_dump_claim : t -> int -> Cxlshm_shmem.Pptr.t
(** Death-dump claim word: the lease era whose trace-ring dump has been
    captured. A monitor may capture a dump for era [e] only after winning
    CAS [claim: < e → e], so concurrent monitors (or repeated
    [declare_failed]) capture exactly one dump per failure incident. *)

val era_cell : t -> int -> int -> Cxlshm_shmem.Pptr.t
(** [era_cell lay i j] is the address of Era[i][j]. Row [i] is written only
    by client [i] (or by recovery acting for dead [i]); column [i] is read
    during client [i]'s recovery (Fig 4a). *)

val redo_base : t -> int -> Cxlshm_shmem.Pptr.t
val redo_words : int

val class_head : t -> int -> int -> Cxlshm_shmem.Pptr.t
(** [class_head lay cid k] — current page (packed gid+1, 0 = none) used by
    client [cid] for page kind [k] (size classes and the RootRef class). *)

val client_cur_segment : t -> int -> Cxlshm_shmem.Pptr.t

(** {1 Retirement journal}

    Per client, inside its ClientLocalState: [count; base_era; K slots]
    where K = [Config.epoch_batch]. A non-zero [count] is the sealed-batch
    commit point — the owner wrote [count] rootrefs into the slots, fenced,
    then stored the count. Entries are processed strictly in slot order and
    each entry's rootref is freed ([in_use] cleared) only when it is fully
    retired, so after a crash the journal tail of still-[in_use] entries is
    exactly the unfinished work: at most the first such entry can have a
    committed-but-unfinished count decrement (at the dead client's current
    era), the rest never started. [base_era] is diagnostic only — child
    detaches inside an entry consume a variable number of eras, so recovery
    resolves each entry against live state, not a precomputed era. Zero
    count means no batch is in flight (the volatile buffer, if any, is
    discarded by a crash by design). *)

val retire_count : t -> int -> Cxlshm_shmem.Pptr.t
val retire_era : t -> int -> Cxlshm_shmem.Pptr.t
val retire_slot : t -> int -> int -> Cxlshm_shmem.Pptr.t

(** {1 Parked-record registry}

    Per client, inside its ClientLocalState after the retirement journal:
    [Config.park_slots] pairs of [(stamp, rr)]. A KV writer mirrors its
    volatile deferred list here — the rootref parking a displaced record
    plus the retire-epoch stamp that gates its reclamation. The rr word is
    the commit point (stamp written and fenced first); rr = 0 marks the
    slot free regardless of the stamp word. If the owner dies, recovery
    ({!Recovery.recover_parked}) moves the occupied slots into the
    adoption journal with stamps intact instead of reaping era-blind. *)

val park_capacity : t -> int
val park_slot_stamp : t -> int -> int -> Cxlshm_shmem.Pptr.t
val park_slot_rr : t -> int -> int -> Cxlshm_shmem.Pptr.t
(** [park_slot_stamp/rr lay cid k] — the two words of registry slot [k]. *)

val domain_class_head : t -> int -> int -> Cxlshm_shmem.Pptr.t
(** [domain_class_head lay d c] — head word of domain [d]'s sharded free
    stack for size class [c] (packed {tag, pptr} Treiber stack, same shape
    as {!seg_client_free}). Only present when [Config.num_domains > 0]. *)

(** {1 Queue directory} *)

val queue_slot_words : int
val queue_slot : t -> int -> Cxlshm_shmem.Pptr.t

val queue_max_channel_segs : int
(** Maximum private sub-heap segments one RPC channel can register. *)

val queue_slot_nsegs : t -> int -> Cxlshm_shmem.Pptr.t
(** Count word of queue [q]'s channel sub-heap registry (directory slot
    word +4; the 8-word slot only uses +0..+3 for the queue itself). *)

val queue_slot_seg : t -> int -> int -> Cxlshm_shmem.Pptr.t
(** [queue_slot_seg lay q k] — registry word [k] (directory slot word
    +5+k), holding segment index + 1, or 0 when unused. *)

(** {1 Lock stripes (straw-man §4.2 comparison)} *)

val lock_stripes : int
val lock_stripe : t -> int -> Cxlshm_shmem.Pptr.t
(** Spinlock word [i] of the striped lock table used only by
    {!Locked_refc}, the paper's blocking straw-man. *)

(** {1 Named persistent roots (§6.4.1)} *)

val root_slots : int
val root_slot : t -> int -> Cxlshm_shmem.Pptr.t
(** Directory slot [i]: {v +0 state/name-hash, +1 counted obj pointer v}. *)

(** {1 Recovery area} *)

val recovery_lock : t -> Cxlshm_shmem.Pptr.t
val recovery_failed : t -> Cxlshm_shmem.Pptr.t
val recovery_phase : t -> Cxlshm_shmem.Pptr.t
val recovery_wl_top : t -> Cxlshm_shmem.Pptr.t
val recovery_wl_slot : t -> int -> Cxlshm_shmem.Pptr.t
val recovery_wl_capacity : t -> int

(** {1 Adoption journal}

    Arena-wide region of [Config.adopt_slots] slots of {!adopt_slot_words}
    words each: [{rr, stamp, claim}]. Recovery of a dead KV writer parks
    the writer's still-live deferred records here (original retire stamps
    intact) for a successor to adopt ({!Cxl_kv.adopt_recovered}); the rr
    word is the commit point (stamp written, claim zeroed, fence, then rr);
    [claim = cid + 1] marks an adoption in flight by that successor, so a
    crash between claiming and re-registering is resumable: the claimant's
    own recovery either completes the move (its registry holds the rr) or
    resets the claim. Like the PR-7 evacuation journal, every transition
    is idempotent under re-execution. *)

val adopt_slot_words : int
val adopt_capacity : t -> int
val adopt_slot_rr : t -> int -> Cxlshm_shmem.Pptr.t
val adopt_slot_stamp : t -> int -> Cxlshm_shmem.Pptr.t
val adopt_slot_claim : t -> int -> Cxlshm_shmem.Pptr.t

(** {1 Trace rings}

    One fixed-size event ring per client, written by the observability layer
    ({!Trace}) with control-plane stores so a dead client's last events
    survive in shared memory for the monitor and [cxlshm trace]. Ring layout:
    a monotone write-cursor word, a reserved word, then
    [Config.trace_slots] slots of {!trace_slot_words} words each
    ({v tag, addr, era, dur_ns, t_ns v}); the slot for event [n] is
    [n mod trace_slots]. *)

val trace_hdr_words : int
val trace_slot_words : int

val trace_ring : t -> int -> Cxlshm_shmem.Pptr.t
(** Base of client [i]'s ring (= its cursor word). *)

val trace_cursor : t -> int -> Cxlshm_shmem.Pptr.t
val trace_slot : t -> int -> int -> Cxlshm_shmem.Pptr.t
(** [trace_slot lay cid k] — first word of slot [k] of client [cid]. *)

(** {1 Segments, pages, blocks} *)

val num_pages_total : t -> int
val segment_base : t -> int -> Cxlshm_shmem.Pptr.t
val segment_of_addr : t -> Cxlshm_shmem.Pptr.t -> int
(** Segment index containing an address inside the segments area. Raises
    [Invalid_argument] for addresses outside it. *)

val page_meta_words : int

(** Page metas: kind, block_words, capacity, free-list head, used count. *)

val page_gid : t -> seg:int -> page:int -> int
(** Global page id = seg * pages_per_segment + page. *)

val page_of_gid : t -> int -> int * int
val page_meta : t -> gid:int -> Cxlshm_shmem.Pptr.t
val page_kind : t -> gid:int -> Cxlshm_shmem.Pptr.t
val page_block_words : t -> gid:int -> Cxlshm_shmem.Pptr.t
val page_capacity : t -> gid:int -> Cxlshm_shmem.Pptr.t
val page_free : t -> gid:int -> Cxlshm_shmem.Pptr.t
val page_used : t -> gid:int -> Cxlshm_shmem.Pptr.t
val page_aux : t -> gid:int -> Cxlshm_shmem.Pptr.t
(** Spare per-page meta word (huge objects store their segment span here). *)

val page_aux2 : t -> gid:int -> Cxlshm_shmem.Pptr.t
(** Second spare meta word. A huge run's head page stores the object's true
    [data_words] here, since the packed meta word's field saturates (the
    object header's data_words field is narrower than a maximal run). *)

val page_area : t -> gid:int -> Cxlshm_shmem.Pptr.t
val page_gid_of_addr : t -> Cxlshm_shmem.Pptr.t -> int
(** Global page id of the page area containing [addr]. Raises
    [Invalid_argument] if [addr] lies in a segment header or outside the
    segments area. *)

val block_addr : t -> gid:int -> block_words:int -> int -> Cxlshm_shmem.Pptr.t
