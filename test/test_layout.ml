(* Layout geometry: region disjointness and bounds, as properties over
   random configurations. *)

open Cxlshm

let gen_cfg =
  QCheck.Gen.(
    let* max_clients = 2 -- 64 in
    let* num_segments = 1 -- 64 in
    let* pages_per_segment = 1 -- 16 in
    let* pw_exp = 4 -- 10 in
    let* queue_slots = 1 -- 32 in
    let* worklist_words = 16 -- 256 in
    let* trace_slots = 16 -- 64 in
    let* epoch_batch = 0 -- 32 in
    let* num_domains = 0 -- 8 in
    let* park_slots = 1 -- 64 in
    let* adopt_slots = 1 -- 64 in
    let num_domains = min num_domains max_clients in
    return
      {
        Config.max_clients;
        num_segments;
        pages_per_segment;
        page_words = 1 lsl pw_exp;
        queue_slots;
        worklist_words;
        tier = Cxlshm_shmem.Latency.Cxl;
        backend = Cxlshm_shmem.Mem.Flat;
        eadr = false;
        trace = false;
        trace_slots;
        cache = true;
        epoch_batch;
        num_domains;
        lease_ttl = 4;
        park_slots;
        adopt_slots;
      })

let arb_cfg = QCheck.make gen_cfg

let prop_regions_ordered =
  QCheck.Test.make ~name:"layout regions ordered and disjoint" ~count:200
    arb_cfg (fun cfg ->
      let l = Layout.make cfg in
      l.Layout.arena_hdr > 0
      && l.Layout.segvec_base >= l.Layout.arena_hdr + 16
      && l.Layout.clientvec_base
         >= l.Layout.segvec_base + (Layout.seg_meta_words * cfg.Config.num_segments)
      && l.Layout.queuedir_base
         >= l.Layout.clientvec_base
            + (l.Layout.client_state_words * cfg.Config.max_clients)
      && l.Layout.recovery_base
         >= l.Layout.queuedir_base
            + (Layout.queue_slot_words * cfg.Config.queue_slots)
      && l.Layout.trace_base
         >= l.Layout.recovery_base + 16 + cfg.Config.worklist_words
      && l.Layout.trace_ring_words
         >= Layout.trace_hdr_words
            + (Layout.trace_slot_words * cfg.Config.trace_slots)
      && l.Layout.segments_base
         >= l.Layout.trace_base
            + (l.Layout.trace_ring_words * cfg.Config.max_clients)
      && l.Layout.total_words
         = l.Layout.segments_base
           + (l.Layout.segment_words * cfg.Config.num_segments))

let prop_page_areas_inside_segment =
  QCheck.Test.make ~name:"page areas inside their segment" ~count:200 arb_cfg
    (fun cfg ->
      let l = Layout.make cfg in
      List.for_all
        (fun seg ->
          List.for_all
            (fun page ->
              let gid = Layout.page_gid l ~seg ~page in
              let a = Layout.page_area l ~gid in
              a >= Layout.segment_base l seg + l.Layout.seg_hdr_words
              && a + cfg.Config.page_words
                 <= Layout.segment_base l seg + l.Layout.segment_words)
            (List.init cfg.Config.pages_per_segment Fun.id))
        (List.init cfg.Config.num_segments Fun.id))

let prop_addr_roundtrips =
  QCheck.Test.make ~name:"segment/page of address round-trips" ~count:200
    arb_cfg (fun cfg ->
      let l = Layout.make cfg in
      List.for_all
        (fun seg ->
          Layout.segment_of_addr l (Layout.segment_base l seg) = seg
          && List.for_all
               (fun page ->
                 let gid = Layout.page_gid l ~seg ~page in
                 Layout.page_gid_of_addr l (Layout.page_area l ~gid) = gid
                 && Layout.page_of_gid l gid = (seg, page))
               (List.init cfg.Config.pages_per_segment Fun.id))
        (List.init cfg.Config.num_segments Fun.id))

let prop_era_cells_disjoint =
  QCheck.Test.make ~name:"era cells unique per (i,j)" ~count:50 arb_cfg
    (fun cfg ->
      let l = Layout.make cfg in
      let m = cfg.Config.max_clients in
      let seen = Hashtbl.create (m * m) in
      let ok = ref true in
      for i = 0 to m - 1 do
        for j = 0 to m - 1 do
          let c = Layout.era_cell l i j in
          if Hashtbl.mem seen c then ok := false;
          Hashtbl.replace seen c ()
        done
      done;
      !ok)

let test_class_geometry () =
  let cfg = Config.default in
  Alcotest.(check int) "min class" 4 (Config.class_block_words cfg 0);
  (* classes double up to the page size *)
  for c = 1 to Config.num_classes cfg - 1 do
    Alcotest.(check int)
      (Printf.sprintf "class %d" c)
      (2 * Config.class_block_words cfg (c - 1))
      (Config.class_block_words cfg c)
  done;
  (* every small size maps to the smallest fitting class *)
  for dw = 0 to Config.max_class_data_words cfg do
    match Config.class_of_data_words cfg dw with
    | Some c ->
        Alcotest.(check bool)
          (Printf.sprintf "%d words fit class %d" dw c)
          true
          (Config.class_block_words cfg c >= dw + Config.header_words
          && (c = 0
             || Config.class_block_words cfg (c - 1) < dw + Config.header_words))
    | None -> Alcotest.fail "size should have a class"
  done;
  Alcotest.(check (option int)) "too large has no class" None
    (Config.class_of_data_words cfg (Config.max_class_data_words cfg + 1))

let test_validate_rejects_bad_config () =
  Alcotest.check_raises "too many clients"
    (Invalid_argument "Config.validate: max_clients must be in [2, 1023]")
    (fun () -> Config.validate { Config.default with Config.max_clients = 2048 });
  Alcotest.check_raises "page not power of two"
    (Invalid_argument "Config.validate: page_words must be a power of two")
    (fun () -> Config.validate { Config.default with Config.page_words = 1000 })

let suite =
  [
    Generators.to_alcotest prop_regions_ordered;
    Generators.to_alcotest prop_page_areas_inside_segment;
    Generators.to_alcotest prop_addr_roundtrips;
    Generators.to_alcotest prop_era_cells_disjoint;
    Alcotest.test_case "size-class geometry" `Quick test_class_geometry;
    Alcotest.test_case "config validation" `Quick test_validate_rejects_bad_config;
  ]
