(** The §4.2 straw-man: lock-based reference-count maintenance.

    This is the second straw-man the paper dismantles — the design
    Lightning actually uses: each object's count is protected by a
    (striped) spinlock; a redo log with the {e absolute} new count makes
    the operation idempotent, so recovery can safely replay it. The catch,
    and the reason CXL-SHM exists: a client that dies while holding a lock
    {b blocks every other client} hashing to that stripe until the recovery
    service notices the failure and releases the lock.

    Implemented over the same object headers as {!Refc} so the two schemes
    can be benchmarked against each other (the `ablation-locking`
    experiment) and the blocking behaviour demonstrated live. Do not mix
    the two schemes on the same object concurrently. *)

exception Lock_abandoned of int
(** Raised by [try_]-flavoured operations when the stripe is held by a
    client that has been declared failed. *)

val attach :
  Ctx.t -> ref_addr:Cxlshm_shmem.Pptr.t -> refed:Cxlshm_shmem.Pptr.t -> unit
(** Lock, log the absolute new count, increment, link, unlock. Spins while
    the stripe is held — {e including by a dead client}. *)

val detach :
  Ctx.t -> ref_addr:Cxlshm_shmem.Pptr.t -> refed:Cxlshm_shmem.Pptr.t -> int

val attach_bounded :
  Ctx.t ->
  ref_addr:Cxlshm_shmem.Pptr.t ->
  refed:Cxlshm_shmem.Pptr.t ->
  spins:int ->
  bool
(** Like {!attach} but gives up after [spins] failed acquisitions —
    benchmarks use it to measure how long a dead client's lock stalls the
    caller. Returns [false] on timeout. *)

val holder : Ctx.t -> Cxlshm_shmem.Pptr.t -> int option
(** Current holder of the stripe guarding [obj]. *)

val recover : Ctx.t -> failed_cid:int -> int
(** The blocking design's recovery: for every stripe held by the dead
    client, finish the logged operation (idempotent thanks to the absolute
    count) and release the lock. Returns the number of stripes released.
    Until this runs, spinners wait — exactly the indefinite blocking the
    paper's §4.2 describes. *)
