(** Offline arena verifier and repairer ("fsck for the pool").

    Crash recovery (§5) resolves interrupted {e transactions}; it assumes
    the bytes it reads are the bytes somebody wrote. Device faults break
    that assumption: stuck media swallows stores, torn writes leave
    half-updated headers, and a page's metadata may stop describing its
    blocks at all. {!repair} restores the arena's structural invariants in
    idempotent passes — metadata sanity, page quarantine, a crash-recovery
    sweep of every recorded client, mark/repair of the reference graph
    from the durable roots, free-structure rebuild, leak scan — and ends
    with a fresh {!Validate.run} as the verdict.

    Must run offline: no live clients, fault injection disarmed ({!repair}
    disarms it itself). Repair is lossy where the damage is lossy — it
    restores invariants, not data. *)

type report = {
  seg_meta_fixed : int;  (** out-of-range segment state/owner words reset *)
  pages_quarantined : int;
      (** pages with unusable geometry taken out of service
          ({!Config.kind_quarantined}) *)
  page_meta_fixed : int;  (** stale metadata of unused pages normalised *)
  torn_headers_cleared : int;
  clients_swept : int;  (** recorded clients put through crash recovery *)
  sweep_errors : int;  (** recovery attempts that raised *)
  wild_refs_cleared : int;  (** references to invalid block bases dropped *)
  unreachable_freed : int;  (** counted objects with no remaining holder *)
  counts_fixed : int;  (** reference counts rewritten to holder counts *)
  chains_rebuilt : int;  (** pages whose free chain was reconstructed *)
  stacks_cleared : int;  (** non-empty cross-client free stacks zeroed *)
  trace_rings_reset : int;
      (** per-client event rings zeroed because the cursor or a published
          slot failed to decode (torn control-plane store) *)
  adopt_fixed : int;
      (** adoption-journal / park-registry entries cleared (dangling
          rootref, stale claim, duplicate, or registry residue of a freed
          client slot) *)
  validation : Validate.t;  (** final post-repair verdict *)
}

val clean : report -> bool
(** Did the post-repair validation come back clean? *)

val pp : Format.formatter -> report -> unit

val check : Cxlshm_shmem.Mem.t -> Layout.t -> Validate.t
(** Read-only verification (alias of {!Validate.run}): use before
    {!repair} to decide whether repair is needed, and to show that a
    damaged arena indeed fails. *)

val repair : Ctx.t -> report
(** Full verify-and-repair pipeline on a quiesced arena. [ctx] should be a
    service context (its stats absorb the repair traffic). Idempotent: a
    second run finds nothing left to fix. *)
