module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency
module Buddy = Cxlshm_allocators.Buddy

let name = "Lightning"

(* The hash index and the undo-log area live in a small control arena;
   records come from the lock-based buddy allocator. Every mutation runs
   under the store's global lock and writes a 4-word undo-log entry first
   (Lightning's crash-consistency mechanism), so all mutation traffic lands
   in [serial] and serialises across threads — the behaviour the paper
   blames for Lightning's Fig 10a gap. Reads are direct shm loads. *)
type store = {
  idx : Mem.t;
  buddy : Buddy.t;
  buckets : int;
  value_words : int;
  threads : int;
  log_base : int;
  serial : Stats.t;
  lock : Mutex.t;
}

type handle = { s : store; bth : Buddy.thread; st : Stats.t }

let tier _ = Latency.Local_numa

let create ~buckets ~value_words ~words ~threads =
  let idx = Mem.create ~tier:Latency.Local_numa ~words:(buckets + 32) () in
  {
    idx;
    buddy = Buddy.create ~words ~threads;
    buckets;
    value_words;
    threads;
    log_base = buckets;
    serial = Stats.create ();
    lock = Mutex.create ();
  }

let handle s tid = { s; bth = Buddy.thread s.buddy tid; st = Stats.create () }
let stats h = h.st

let serial_stats s =
  let acc = Stats.copy s.serial in
  Stats.add acc (Buddy.serial_stats s.buddy);
  acc

let hash key = (key * 0x2545F4914F6CDD1D) land max_int
let bucket_addr b = b

(* Record layout inside a buddy block: [next][key][value...]. *)

let with_store_lock h f =
  Mutex.lock h.s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.s.lock) f

(* Lightning keeps every store mutation crash-consistent with per-object
   undo logging: the object header, the buddy metadata words touched by the
   split/merge, and the index pointer are all logged and persisted before
   the mutation applies (~10 logged words, each forced out). *)
let undo_log h ~op ~key =
  let base = h.s.log_base in
  for i = 0 to 9 do
    Mem.store h.s.idx ~st:h.s.serial (base + i) (op + key + i);
    Mem.flush h.s.idx ~st:h.s.serial (base + i)
  done;
  Mem.fence h.s.idx ~st:h.s.serial

let get h ~key =
  let b = hash key mod h.s.buckets in
  let rec walk r =
    if r = 0 then None
    else if Buddy.read_word h.bth r 1 = key then Some (Buddy.read_word h.bth r 2)
    else walk (Buddy.read_word h.bth r 0)
  in
  walk (Mem.load h.s.idx ~st:h.st (bucket_addr b))

(* Lightning is an object store: a put creates a new immutable object via
   the lock-based buddy allocator and retires the previous version — the
   alloc/free-per-write path the paper blames for the Fig 10a gap. *)
let put h ~key ~value =
  with_store_lock h (fun () ->
      undo_log h ~op:1 ~key;
      let b = bucket_addr (hash key mod h.s.buckets) in
      let head = Mem.load h.s.idx ~st:h.s.serial b in
      let fresh = Buddy.alloc h.bth ~size_bytes:((2 + h.s.value_words) * 8) in
      Buddy.write_word h.bth fresh 1 key;
      for i = 0 to h.s.value_words - 1 do
        Buddy.write_word h.bth fresh (2 + i) (value + i)
      done;
      let rec unlink prev r =
        if r = 0 then head
        else if Buddy.read_word h.bth r 1 = key then begin
          let next = Buddy.read_word h.bth r 0 in
          (if prev = 0 then () else Buddy.write_word h.bth prev 0 next);
          let head' = if prev = 0 then next else head in
          Buddy.free h.bth r;
          head'
        end
        else unlink r (Buddy.read_word h.bth r 0)
      in
      let head' = unlink 0 head in
      Buddy.write_word h.bth fresh 0 head';
      Mem.store h.s.idx ~st:h.s.serial b fresh)

let delete h ~key =
  with_store_lock h (fun () ->
      undo_log h ~op:2 ~key;
      let b = bucket_addr (hash key mod h.s.buckets) in
      let head = Mem.load h.s.idx ~st:h.s.serial b in
      let rec remove prev r =
        if r = 0 then false
        else if Buddy.read_word h.bth r 1 = key then begin
          let next = Buddy.read_word h.bth r 0 in
          (if prev = 0 then Mem.store h.s.idx ~st:h.s.serial b next
           else Buddy.write_word h.bth prev 0 next);
          Buddy.free h.bth r;
          true
        end
        else remove r (Buddy.read_word h.bth r 0)
      in
      remove 0 head)
