(* Observability layer: latency histograms, the per-client event ring in
   shared memory, crash forensics (the ring survives kills and image
   round-trips), monitor death dumps, and fsck's ring repair. *)

open Cxlshm
module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Histogram = Cxlshm_shmem.Histogram

let traced_cfg = { Config.small with Config.trace = true }

(* ---- histograms ---- *)

let test_histogram_basics () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check (float 0.)) "empty p50" 0. (Histogram.p50 h);
  List.iter (Histogram.record h) [ 10.; 20.; 30.; 40. ];
  Alcotest.(check int) "count" 4 (Histogram.count h);
  Alcotest.(check (float 0.)) "sum" 100. (Histogram.sum_ns h);
  Alcotest.(check (float 0.)) "mean" 25. (Histogram.mean_ns h);
  Alcotest.(check (float 0.)) "min" 10. (Histogram.min_ns h);
  Alcotest.(check (float 0.)) "max" 40. (Histogram.max_ns h);
  Histogram.record h (-5.);
  Alcotest.(check (float 0.)) "negative clamps to 0" 0. (Histogram.min_ns h)

let test_bucket_edges () =
  Alcotest.(check int) "0ns" 0 (Histogram.bucket_of_ns 0.);
  Alcotest.(check int) "0.5ns" 0 (Histogram.bucket_of_ns 0.5);
  Alcotest.(check int) "1ns" 1 (Histogram.bucket_of_ns 1.);
  Alcotest.(check int) "2ns" 2 (Histogram.bucket_of_ns 2.);
  Alcotest.(check int) "3ns" 2 (Histogram.bucket_of_ns 3.);
  Alcotest.(check int) "4ns" 3 (Histogram.bucket_of_ns 4.);
  Alcotest.(check int) "1023ns" 10 (Histogram.bucket_of_ns 1023.);
  Alcotest.(check int) "1024ns" 11 (Histogram.bucket_of_ns 1024.);
  Alcotest.(check int) "huge clamps to last bucket" (Histogram.num_buckets - 1)
    (Histogram.bucket_of_ns 1e30)

let test_percentiles () =
  let h = Histogram.create () in
  (* 90 fast ops, 10 slow ones: the tail must separate from the median *)
  for _ = 1 to 90 do
    Histogram.record h 100.
  done;
  for _ = 1 to 10 do
    Histogram.record h 10_000.
  done;
  let p50 = Histogram.p50 h and p95 = Histogram.p95 h and p99 = Histogram.p99 h in
  Alcotest.(check bool) "p50 <= p95" true (p50 <= p95);
  Alcotest.(check bool) "p95 <= p99" true (p95 <= p99);
  Alcotest.(check bool) "p50 in the fast bucket" true (p50 >= 64. && p50 < 256.);
  Alcotest.(check bool) "p99 in the slow bucket" true (p99 >= 8192.);
  Alcotest.(check bool) "bounded by min/max" true
    (p50 >= Histogram.min_ns h && p99 <= Histogram.max_ns h)

let test_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.record a) [ 1.; 2.; 3. ];
  List.iter (Histogram.record b) [ 100.; 200. ];
  Histogram.merge ~into:a b;
  Alcotest.(check int) "merged count" 5 (Histogram.count a);
  Alcotest.(check (float 0.)) "merged sum" 306. (Histogram.sum_ns a);
  Alcotest.(check (float 0.)) "merged min" 1. (Histogram.min_ns a);
  Alcotest.(check (float 0.)) "merged max" 200. (Histogram.max_ns a)

let test_op_names_roundtrip () =
  Alcotest.(check int) "eight op classes" 8 Histogram.num_ops;
  List.iteri
    (fun i op ->
      Alcotest.(check int) "index" i (Histogram.op_index op);
      Alcotest.(check bool) "of_index" true (Histogram.op_of_index i = op);
      Alcotest.(check bool)
        ("name roundtrip: " ^ Histogram.op_name op)
        true
        (Histogram.op_of_name (Histogram.op_name op) = Some op))
    Histogram.all_ops;
  Alcotest.(check bool) "unknown name" true (Histogram.op_of_name "nope" = None)

(* ---- the event ring ---- *)

let test_ring_records_and_dumps () =
  let arena = Shm.create ~cfg:traced_cfg () in
  let a = Shm.join arena () in
  let r = Shm.cxl_malloc a ~size_bytes:16 () in
  Cxl_ref.drop r;
  let events = Trace.dump (Shm.mem arena) (Shm.layout arena) ~cid:a.Ctx.cid () in
  Alcotest.(check bool) "events recorded" true (List.length events >= 2);
  (* oldest first, strictly increasing seq *)
  let seqs = List.map (fun e -> e.Trace.seq) events in
  Alcotest.(check (list int)) "seq is contiguous"
    (List.init (List.length seqs) (fun i -> List.hd seqs + i))
    seqs;
  (* every Begin has its matching End in a serial run *)
  let begins =
    List.length (List.filter (fun e -> e.Trace.phase = Trace.Begin) events)
  in
  let ends =
    List.length (List.filter (fun e -> e.Trace.phase = Trace.End) events)
  in
  Alcotest.(check int) "balanced begin/end" begins ends;
  (* the alloc span is in there, and histograms saw the same operations *)
  Alcotest.(check bool) "alloc span present" true
    (List.exists (fun e -> e.Trace.op = Histogram.Alloc_small) events);
  Alcotest.(check int) "histogram fed" 1
    (Histogram.count a.Ctx.hists.(Histogram.op_index Histogram.Alloc_small))

let test_ring_wraps () =
  let arena = Shm.create ~cfg:traced_cfg () in
  let a = Shm.join arena () in
  let slots = traced_cfg.Config.trace_slots in
  let extra = 10 in
  for i = 0 to slots + extra - 1 do
    Trace.emit a ~op:Histogram.Rootref ~phase:Trace.Begin ~addr:i ~dur_ns:0.
  done;
  let events = Trace.dump a.Ctx.mem a.Ctx.lay ~cid:a.Ctx.cid () in
  Alcotest.(check int) "ring keeps exactly trace_slots" slots
    (List.length events);
  let first = List.hd events and last = List.nth events (slots - 1) in
  Alcotest.(check int) "oldest surviving event" extra first.Trace.seq;
  Alcotest.(check int) "newest event" (slots + extra - 1) last.Trace.seq;
  (* addr carried through: the overwritten events are really the old ones *)
  Alcotest.(check int) "payload of oldest" extra first.Trace.addr;
  (* ?last trims from the old end *)
  let tail = Trace.dump a.Ctx.mem a.Ctx.lay ~cid:a.Ctx.cid ~last:5 () in
  Alcotest.(check int) "last 5" 5 (List.length tail);
  Alcotest.(check int) "last 5 ends at the newest" (slots + extra - 1)
    (List.nth tail 4).Trace.seq

let workload ctx =
  let parent = Shm.cxl_malloc ctx ~size_bytes:16 ~emb_cnt:1 () in
  for _ = 1 to 20 do
    let r = Shm.cxl_malloc ctx ~size_bytes:32 () in
    Cxl_ref.set_emb parent 0 r;
    Cxl_ref.clear_emb parent 0;
    Cxl_ref.drop r
  done;
  Cxl_ref.drop parent

let test_disabled_trace_is_invisible () =
  (* same workload, tracing off vs on: the off run writes nothing to the
     ring, and the modeled clock must be bit-identical — ring writes go
     through the control plane and never touch the stats *)
  let run ~trace =
    let cfg = { Config.small with Config.trace = trace } in
    let arena = Shm.create ~cfg () in
    let a = Shm.join arena () in
    workload a;
    let events = Trace.dump a.Ctx.mem a.Ctx.lay ~cid:a.Ctx.cid () in
    let ns = Stats.modeled_ns (Mem.cost_model a.Ctx.mem) a.Ctx.st in
    (events, ns, a)
  in
  let ev_off, ns_off, a_off = run ~trace:false in
  let ev_on, ns_on, a_on = run ~trace:true in
  Alcotest.(check int) "trace off: empty ring" 0 (List.length ev_off);
  Alcotest.(check int) "trace off: empty histograms" 0
    (Array.fold_left (fun acc h -> acc + Histogram.count h) 0 a_off.Ctx.hists);
  Alcotest.(check bool) "trace on: ring populated" true (List.length ev_on > 0);
  Alcotest.(check bool) "trace on: histograms populated" true
    (Array.fold_left (fun acc h -> acc + Histogram.count h) 0 a_on.Ctx.hists > 0);
  Alcotest.(check (float 0.)) "modeled clock identical" ns_off ns_on

let test_runtime_toggle () =
  let arena = Shm.create ~cfg:Config.small () in
  let a = Shm.join arena () in
  Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:8 ());
  Alcotest.(check int) "off by default" 0
    (List.length (Trace.dump a.Ctx.mem a.Ctx.lay ~cid:a.Ctx.cid ()));
  Trace.set a true;
  Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:8 ());
  let mid = List.length (Trace.dump a.Ctx.mem a.Ctx.lay ~cid:a.Ctx.cid ()) in
  Alcotest.(check bool) "events after enabling" true (mid > 0);
  Trace.set a false;
  Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:8 ());
  Alcotest.(check int) "quiet again after disabling" mid
    (List.length (Trace.dump a.Ctx.mem a.Ctx.lay ~cid:a.Ctx.cid ()))

(* ---- crash forensics ---- *)

let tmp = Filename.temp_file "cxlshm_trace" ".pool"

let test_crash_leaves_ring_behind () =
  let arena = Shm.create ~cfg:traced_cfg () in
  let a = Shm.join arena () in
  (* enough traffic to lap the ring before the kill *)
  for _ = 1 to 100 do
    Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:32 ())
  done;
  let parent = Shm.cxl_malloc a ~size_bytes:16 ~emb_cnt:1 () in
  let child = Shm.cxl_malloc a ~size_bytes:16 () in
  a.Ctx.fault <- Fault.at Fault.Txn_after_cas ~nth:1;
  (try
     Cxl_ref.set_emb parent 0 child;
     Alcotest.fail "expected crash"
   with Fault.Crashed _ -> ());
  a.Ctx.fault <- Fault.none;
  (* the ring survives an image round trip exactly as the client left it *)
  Shm.save arena tmp;
  let loaded = Shm.load_raw tmp in
  let events =
    Trace.dump (Shm.mem loaded) (Shm.layout loaded) ~cid:a.Ctx.cid ()
  in
  Alcotest.(check bool) "at least 64 events replayable" true
    (List.length events >= 64);
  let last = List.nth events (List.length events - 1) in
  Alcotest.(check bool) "last event is the fatal span" true
    (last.Trace.phase = Trace.Err);
  Alcotest.(check bool) "died in the attach" true
    (last.Trace.op = Histogram.Refc_attach);
  (* recovery on the original arena still works with the ring in place *)
  Client.declare_failed (Shm.service_ctx arena) ~cid:a.Ctx.cid;
  ignore (Shm.recover arena ~failed_cid:a.Ctx.cid);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean after recovery" true
    (Validate.is_clean (Shm.validate arena))

let test_monitor_death_dump () =
  let arena = Shm.create ~cfg:{ traced_cfg with Config.lease_ttl = 1 } () in
  let a = Shm.join arena () in
  let b = Shm.join arena () in
  for _ = 1 to 5 do
    Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:16 ())
  done;
  let mon = Shm.monitor arena () in
  Client.heartbeat a;
  Client.heartbeat b;
  ignore (Monitor.check_once mon);
  (* a goes silent; b keeps heartbeating *)
  Client.heartbeat b;
  ignore (Monitor.check_once mon);
  Client.heartbeat b;
  Alcotest.(check (list int)) "a condemned" [ a.Ctx.cid ]
    (Monitor.check_once mon);
  (match Monitor.death_dumps mon with
  | (cid, events) :: _ ->
      Alcotest.(check int) "dump is for the dead client" a.Ctx.cid cid;
      Alcotest.(check bool) "dump has events" true (events <> []);
      Alcotest.(check bool) "dump bounded" true (List.length events <= 16)
  | [] -> Alcotest.fail "monitor captured no death dump");
  ignore (Monitor.recover_suspects mon);
  ignore (Shm.scan_leaking arena);
  Alcotest.(check bool) "clean" true (Validate.is_clean (Shm.validate arena))

let test_fsck_repairs_torn_ring () =
  let arena = Shm.create ~cfg:traced_cfg () in
  let a = Shm.join arena () in
  for _ = 1 to 10 do
    Cxl_ref.drop (Shm.cxl_malloc a ~size_bytes:16 ())
  done;
  let mem = Shm.mem arena and lay = Shm.layout arena in
  let cid = a.Ctx.cid in
  Alcotest.(check bool) "ring populated" true
    (Trace.dump mem lay ~cid () <> []);
  Shm.leave a;
  (* a torn control-plane store leaves garbage in a published slot *)
  Mem.unsafe_poke mem (Layout.trace_slot lay cid 0) 9999;
  let r = Shm.fsck arena in
  Alcotest.(check bool) "repair verdict clean" true (Fsck.clean r);
  Alcotest.(check bool) "ring reset counted" true (r.Fsck.trace_rings_reset >= 1);
  (* the ring was zeroed before the recovery sweep; anything in it now is
     the repair's own (traced) recovery spans, not the pre-damage workload *)
  let after = Trace.dump mem lay ~cid () in
  Alcotest.(check bool) "old workload events gone" true (List.length after < 10);
  List.iter
    (fun e ->
      Alcotest.(check bool) "only repair-era events remain" true
        (e.Trace.op = Histogram.Recovery_scan))
    after;
  (* idempotent: nothing left to reset on a second pass *)
  let r2 = Shm.fsck arena in
  Alcotest.(check int) "second pass finds no torn rings" 0
    r2.Fsck.trace_rings_reset

(* Property: quantiles never cross — for any sample set, a higher quantile
   reads a value at least as large — and every quantile stays within the
   observed [min, max] envelope. *)
let prop_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles are monotone" ~count:200
    QCheck.(pair Generators.duration_list (pair Generators.quantile Generators.quantile))
    (fun (samples, (q1, q2)) ->
      let h = Histogram.create () in
      List.iter (Histogram.record h) samples;
      let lo = min q1 q2 and hi = max q1 q2 in
      let p_lo = Histogram.percentile h lo and p_hi = Histogram.percentile h hi in
      if samples = [] then p_lo = 0. && p_hi = 0.
      else
        p_lo <= p_hi
        && p_lo >= Histogram.min_ns h
        && p_hi <= Histogram.max_ns h)

(* Property: merging two histograms is indistinguishable from recording
   both sample sets into one — same counts, same per-bucket contents (so
   same quantiles), same extrema. *)
let prop_merge_roundtrip =
  QCheck.Test.make ~name:"histogram merge equals combined recording"
    ~count:200
    QCheck.(pair Generators.duration_list Generators.duration_list)
    (fun (xs, ys) ->
      let a = Histogram.create () and b = Histogram.create () in
      List.iter (Histogram.record a) xs;
      List.iter (Histogram.record b) ys;
      Histogram.merge ~into:a b;
      let c = Histogram.create () in
      List.iter (Histogram.record c) (xs @ ys);
      let close x y = Float.abs (x -. y) <= 1e-6 *. (1. +. Float.abs y) in
      Histogram.count a = Histogram.count c
      && close (Histogram.sum_ns a) (Histogram.sum_ns c)
      && close (Histogram.min_ns a) (Histogram.min_ns c)
      && close (Histogram.max_ns a) (Histogram.max_ns c)
      && List.for_all
           (fun q ->
             close (Histogram.percentile a q) (Histogram.percentile c q))
           [ 0.; 0.5; 0.9; 0.95; 0.99; 1. ])

let suite =
  [
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "merge" `Quick test_merge;
    Alcotest.test_case "op names roundtrip" `Quick test_op_names_roundtrip;
    Alcotest.test_case "ring records and dumps" `Quick test_ring_records_and_dumps;
    Alcotest.test_case "ring wraps" `Quick test_ring_wraps;
    Alcotest.test_case "disabled trace is invisible" `Quick
      test_disabled_trace_is_invisible;
    Alcotest.test_case "runtime toggle" `Quick test_runtime_toggle;
    Alcotest.test_case "crash leaves ring behind" `Quick
      test_crash_leaves_ring_behind;
    Alcotest.test_case "monitor death dump" `Quick test_monitor_death_dump;
    Alcotest.test_case "fsck repairs torn ring" `Quick
      test_fsck_repairs_torn_ring;
    Generators.to_alcotest prop_percentile_monotone;
    Generators.to_alcotest prop_merge_roundtrip;
  ]
