type report = { roots : int; marked : int; collected : int }

let pp_report ppf r =
  Format.fprintf ppf "roots=%d marked=%d collected=%d" r.roots r.marked
    r.collected

(* Enumerate every initialised data block of the arena with its header
   address, plus huge objects. *)
let iter_blocks (ctx : Ctx.t) f =
  let cfg = Ctx.cfg ctx in
  let lay = ctx.Ctx.lay in
  let rr_kind = Config.kind_rootref cfg in
  let huge_kind = Config.kind_huge cfg in
  for seg = 0 to cfg.Config.num_segments - 1 do
    match Segment.state ctx seg with
    | Segment.Huge_cont -> ()
    | Segment.Huge_head ->
        f (Layout.segment_base lay seg + lay.Layout.seg_hdr_words)
    | Segment.Free | Segment.Active | Segment.Orphaned | Segment.Leaking ->
        let gid0 = Layout.page_gid lay ~seg ~page:0 in
        if Page.kind ctx ~gid:gid0 = huge_kind then
          f (Layout.segment_base lay seg + lay.Layout.seg_hdr_words)
        else
          for p = 0 to cfg.Config.pages_per_segment - 1 do
            let gid = Layout.page_gid lay ~seg ~page:p in
            let k = Page.kind ctx ~gid in
            if k <> Config.kind_unused && k <> rr_kind && k <> huge_kind then
              List.iter f (Page.blocks ctx ~gid)
          done
  done

let root_objects (ctx : Ctx.t) =
  let cfg = Ctx.cfg ctx in
  let lay = ctx.Ctx.lay in
  let acc = ref [] in
  let rr_kind = Config.kind_rootref cfg in
  for seg = 0 to cfg.Config.num_segments - 1 do
    match Segment.state ctx seg with
    | Segment.Huge_head | Segment.Huge_cont -> ()
    | Segment.Free | Segment.Active | Segment.Orphaned | Segment.Leaking ->
        for p = 0 to cfg.Config.pages_per_segment - 1 do
          let gid = Layout.page_gid lay ~seg ~page:p in
          if Page.kind ctx ~gid = rr_kind then
            List.iter
              (fun rr ->
                if Rootref.in_use ctx rr then begin
                  let obj = Rootref.obj ctx rr in
                  if obj <> 0 then acc := obj :: !acc
                end)
              (Page.blocks ctx ~gid)
        done
  done;
  let mem = ctx.Ctx.mem in
  !acc
  @ Transfer.directory_refs mem lay
  @ Named_roots.directory_refs mem lay

let collect (ctx : Ctx.t) =
  let marked : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let rec mark obj =
    if obj <> 0 && not (Hashtbl.mem marked obj) then begin
      Hashtbl.replace marked obj ();
      let emb =
        Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj obj))
      in
      for i = 0 to emb - 1 do
        mark (Ctx.load ctx (Obj_header.emb_slot obj i))
      done
    end
  in
  let roots = root_objects ctx in
  List.iter mark roots;
  (* Sweep: a positive count outside the marked set can never reach zero —
     cycle garbage. Zero its embedded slots without detaching (its peers
     are dying with it) and reclaim the block. *)
  let doomed = ref [] in
  iter_blocks ctx (fun b ->
      if
        Obj_header.ref_cnt_of (Ctx.load ctx (Obj_header.header_of_obj b)) > 0
        && not (Hashtbl.mem marked b)
      then doomed := b :: !doomed);
  List.iter
    (fun b ->
      let emb =
        Obj_header.meta_emb_cnt (Ctx.load ctx (Obj_header.meta_of_obj b))
      in
      for i = 0 to emb - 1 do
        Ctx.store ctx (Obj_header.emb_slot b i) 0
      done)
    !doomed;
  List.iter (fun b -> Alloc.free_obj_block ctx b) !doomed;
  {
    roots = List.length roots;
    marked = Hashtbl.length marked;
    collected = List.length !doomed;
  }
