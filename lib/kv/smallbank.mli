(** Smallbank banking workload mapped onto key-value operations (Fig 10d).

    Standard mix over checking/savings accounts: Balance 15 %,
    DepositChecking 15 %, TransactSavings 15 %, Amalgamate 15 %,
    WriteCheck 25 %, SendPayment 15 %. Each transaction reads and/or
    updates one or two account rows; accounts map to two disjoint key
    ranges (checking, savings). *)

type t

val create : accounts:int -> seed:int -> t
val next : t -> Kv_intf.op list
val load_ops : t -> Kv_intf.op list
