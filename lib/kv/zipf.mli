(** Zipfian key sampler (YCSB's request distribution, Fig 10c).

    Rejection-free O(1)-state sampler after Gray et al. (SIGMOD'94, the
    generator YCSB itself uses): creation costs O(1) time and memory per
    generator instance — a millions-of-keys population no longer pays an
    O(n) CDF-array build per client. [theta = 0] degenerates to uniform.
    Deterministic given the seed. *)

type t

val create : n:int -> theta:float -> seed:int -> t
(** Requires [theta] in [0, 1) (the Gray et al. closed form). *)

val sample : t -> int
(** A rank in [0, n). Rank 0 is the hottest key. *)

val n : t -> int
val theta : t -> float

val expected_top1_mass : t -> float
(** Probability mass of the hottest key — used by distribution sanity
    tests. *)
