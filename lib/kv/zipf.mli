(** Zipfian key sampler (YCSB's request distribution, Fig 10c).

    Precomputes the cumulative distribution over [n] ranks with exponent
    [theta] and samples by binary search; [theta = 0] degenerates to
    uniform. Deterministic given the seed. *)

type t

val create : n:int -> theta:float -> seed:int -> t
val sample : t -> int
(** A rank in [0, n). Rank 0 is the hottest key. *)

val n : t -> int
val theta : t -> float

val expected_top1_mass : t -> float
(** Probability mass of the hottest key — used by distribution sanity
    tests. *)
