(** Arena geometry and size-class configuration.

    Mirrors Fig 3 of the paper: the shared pool is an arena partitioned into
    fixed-size segments, each split into pages dedicated to one size class,
    each page carved into fixed-size blocks. The real system uses 64 MB
    segments; the simulator scales geometry down (configurable) so tests and
    benchmarks stay laptop-sized while preserving every structural invariant. *)

type t = {
  max_clients : int;  (** M — width of the era matrix. *)
  num_segments : int;
  pages_per_segment : int;
  page_words : int;  (** words per page area *)
  queue_slots : int;  (** transfer-queue directory capacity (§5.2) *)
  worklist_words : int;  (** persistent recovery worklist capacity *)
  tier : Cxlshm_shmem.Latency.tier;
  backend : Cxlshm_shmem.Mem.backend_spec;
      (** Memory backend for the pool (see {!Cxlshm_shmem.Mem.backend_spec}):
          the seed's flat single-device array, a striped multi-device pool,
          or the fast non-atomic test backend. For [Striped],
          [stripe_words = 0] means "one segment per stripe" — {!Shm.create}
          resolves it to the layout's segment size so stripes are
          segment-granular. *)
  eadr : bool;
      (** CXL 3.0 / eADR-style platform: caches are flushed by hardware on
          failure, so the fast path's RootRef CLWB is unnecessary (§6.1:
          "this flush may not be required in a CXL 3.0 based
          implementation"). Ablation knob for the bench harness. *)
  trace : bool;
      (** Enable the observability layer: per-op spans feed latency
          histograms and write events into the client's shared-memory
          event ring (see {!Trace}). Off by default; the ring region is
          reserved in the layout either way, so images stay comparable,
          but with [trace = false] every span is a single branch. *)
  trace_slots : int;
      (** Event-ring capacity per client (events kept); the ring wraps.
          Must be in [16, 2^20]. *)
  cache : bool;
      (** Client-local volatile cache tier: per-{!Ctx} DRAM mirror of
          owner-private and immutable shared words (class heads, owned
          segments' page metadata, the ownership set, segment→device
          mapping). Every mirror write is write-through, so shared memory
          always holds the truth and recovery/fsck never consult the cache;
          service contexts run with it off regardless. Ablation knob. *)
  epoch_batch : int;
      (** K > 0 enables epoch-batched retirement: a client's rootref
          releases accumulate in a volatile buffer and up to K of them are
          retired together behind a single fence + journal flush (sealed
          into a persistent per-client retirement journal the recovery
          service replays). 0 keeps the eager per-release path — unit tests
          and explorer models rely on it being schedule-identical to
          earlier releases. Must be in [0, 64] (journal capacity). *)
  num_domains : int;
      (** > 0 shards the hot size-class free heads into that many
          per-domain Treiber stacks ([Layout.domain_class_head]): non-owner
          frees push to the freeing client's shard and allocation pops the
          local shard first, CAS-stealing from sibling domains before
          falling back to the owner page scan. 0 keeps the single
          per-segment cross-client stack only. May exceed [max_clients]
          (surplus stacks stay empty); capped at 1024. *)
  lease_ttl : int;
      (** Client lease lifetime in ticks of the shared logical lease clock
          ([Layout.hdr_lease_clock], advanced by every monitor pass).
          {!Client.heartbeat} extends the caller's lease deadline to
          [now + lease_ttl]; any peer observing [now > deadline] may CAS
          the slot [Alive → Suspected], and a slot still expired a further
          TTL later may be condemned [Suspected → Failed]. This catches
          {e hung} clients — live processes whose progress stalled — that
          the bare heartbeat-miss counter cannot distinguish from slow
          ones. Also bounds the monitor leader lease (same clock). Must be
          in [1, 2^20]. *)
  park_slots : int;
      (** Capacity of each client's persistent parked-record registry
          ([Layout.park_slot_rr]): a KV writer mirrors its volatile
          deferred list — rootref plus retire-epoch stamp — into these
          slots so that if it dies mid-quiesce the recovery service can
          move the survivors into the adoption journal (era intact)
          instead of reaping them under a pinned reader. Overflow degrades
          gracefully to volatile-only parking (a warning is logged; those
          records lose crash-adoption, not era safety while the owner
          lives). Must be in [1, 2^16]. *)
  adopt_slots : int;
      (** Capacity of the arena-wide adoption journal
          ([Layout.adopt_slot_rr]): entries recovery parked on behalf of a
          dead writer — {rootref, original retire stamp, claim word} —
          waiting for a successor's {!Cxl_kv.adopt_recovered}. Must be in
          [1, 2^16]. *)
}

val default : t
(** 16 clients, 64 segments × 16 pages × 8 KB pages ≈ 8 MB arena, CXL tier. *)

val small : t
(** Tiny arena for unit tests (fast to create, easy to exhaust on purpose). *)

val validate : t -> unit
(** Raises [Invalid_argument] on nonsensical geometry. *)

val num_devices : t -> int
(** Devices in the configured pool (1 for [Flat]/[Counting_fast]). *)

(** {1 Size classes}

    Block sizes double from [min_block_words] up to the page size; class 0 is
    the smallest. The paper's classes start at 16 bytes because every CXLObj
    carries a header; ours start at 4 words = 2 header words + 16 data bytes. *)

val header_words : int
(** Words of CXLObj header preceding the data area (packed refcount word +
    meta word). *)

val min_block_words : int
val rootref_words : int  (** RootRef block size: in_use/count word + pptr. *)

val num_classes : t -> int
val class_block_words : t -> int -> int
(** Block size in words of class [i]. *)

val class_of_data_words : t -> int -> int option
(** Smallest class whose blocks hold [data_words] payload words, or [None]
    if the object is too large for any class (huge-object path). *)

val max_class_data_words : t -> int

(** {1 Page kinds} *)

val kind_unused : int
val kind_of_class : int -> int
val class_of_kind : t -> int -> int option
val kind_rootref : t -> int
val kind_huge : t -> int

val kind_quarantined : t -> int
(** Pages fsck has taken out of service (bad media, unrepairable
    geometry). A quarantined page has zeroed metadata — no capacity, no
    blocks — so validation and reclaim skip it and allocation never picks
    it; only recycling its whole segment (a fresh format after the device
    is serviced) brings the frame back. *)
