type op = Attach | Detach | Change | Locked | Move

let op_to_int = function
  | Attach -> 1
  | Detach -> 2
  | Change -> 3
  | Locked -> 4
  | Move -> 5

let op_of_int = function
  | 1 -> Attach
  | 2 -> Detach
  | 3 -> Change
  | 4 -> Locked
  | 5 -> Move
  | n -> invalid_arg (Printf.sprintf "Redo_log.op_of_int: %d" n)

type t = {
  op : op;
  era : int;
  ref_addr : Cxlshm_shmem.Pptr.t;
  refed : Cxlshm_shmem.Pptr.t;
  refed2 : Cxlshm_shmem.Pptr.t;
  saved_cnt : int;
}

(* Record layout within the 8-word redo area:
   +0 valid, +1 op, +2 era, +3 ref_addr, +4 refed, +5 refed2, +6 saved_cnt *)

let write_at (ctx : Ctx.t) base r =
  Ctx.store ctx (base + 1) (op_to_int r.op);
  Ctx.store ctx (base + 2) r.era;
  Ctx.store ctx (base + 3) r.ref_addr;
  Ctx.store ctx (base + 4) r.refed;
  Ctx.store ctx (base + 5) r.refed2;
  Ctx.store ctx (base + 6) r.saved_cnt;
  Ctx.fence ctx;
  (* No clwb here: the paper's fast path flushes only the RootRef line
     during allocation (§6.1); redo entries reach the pool through normal
     write-back (or eADR-like persistence on failure). *)
  Ctx.store ctx base 1

let record (ctx : Ctx.t) r = write_at ctx (Layout.redo_base ctx.lay ctx.cid) r
let record_for ctx ~cid r = write_at ctx (Layout.redo_base ctx.Ctx.lay cid) r

let read (ctx : Ctx.t) ~cid =
  let base = Layout.redo_base ctx.lay cid in
  if Ctx.load ctx base = 0 then None
  else
    Some
      {
        op = op_of_int (Ctx.load ctx (base + 1));
        era = Ctx.load ctx (base + 2);
        ref_addr = Ctx.load ctx (base + 3);
        refed = Ctx.load ctx (base + 4);
        refed2 = Ctx.load ctx (base + 5);
        saved_cnt = Ctx.load ctx (base + 6);
      }

let clear_for (ctx : Ctx.t) ~cid =
  let base = Layout.redo_base ctx.lay cid in
  Ctx.store ctx base 0;
  Ctx.flush ctx base
