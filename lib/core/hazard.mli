(** Hazard-era reclamation for latch-free readers (§5.4).

    The paper notes the classical ABA/use-after-free problem when readers
    traverse linked structures while the single writer unlinks nodes, and
    points at Hazard Eras [Ramalhete & Correia, SPAA'17] "because the era is
    already maintained". This module provides that scheme over a global
    epoch stored in the arena header:

    - a reader brackets each traversal with {!enter}/{!exit}, announcing
      the epoch it started in;
    - a writer stamps every retired node with {!retire_epoch} and frees it
      only once {!min_announced} has moved past that stamp;
    - a dead reader's announcement is ignored once its client slot leaves
      the [Alive] state, so a crashed reader can never block reclamation
      forever (the partial-failure property extends to reclamation). *)

val enter : Ctx.t -> unit
(** Announce the current epoch. Nestable calls are not supported: one
    traversal at a time per client. *)

val exit : Ctx.t -> unit
(** Clear the announcement. *)

val with_protection : Ctx.t -> (unit -> 'a) -> 'a

val retire_epoch : Ctx.t -> int
(** Advance the global epoch and return the value to stamp a retired node
    with. *)

val min_announced : Ctx.t -> int
(** The smallest epoch announced by any {e alive} client, or [max_int] if
    nobody is reading. Nodes stamped with a smaller value are safe to
    free. *)

val announced : Ctx.t -> cid:int -> int
(** Raw slot value (0 = not reading). *)
