type t = {
  ctx : Ctx.t;  (** service context: stats attribution only *)
  misses : int;
  last_seen : int array;  (** last heartbeat value per client *)
  stale : int array;  (** consecutive checks without progress *)
  errors : int Atomic.t;  (** loop iterations that raised *)
  last_error : exn option Atomic.t;
  mutable death_dumps : (int * Trace.event list) list;
      (** newest first: (cid, last ring events) captured at declare-failed *)
}

let death_dump_events = 16

let create ~mem ~lay ?(misses = 3) () =
  let m = lay.Layout.cfg.Config.max_clients in
  {
    ctx = Ctx.make ~cache:false ~epoch:false ~mem ~lay ~cid:0 ();
    misses;
    last_seen = Array.make m (-1);
    stale = Array.make m 0;
    errors = Atomic.make 0;
    last_error = Atomic.make None;
    death_dumps = [];
  }

let ctx t = t.ctx
let death_dumps t = t.death_dumps
let error_count t = Atomic.get t.errors
let last_error t = Atomic.get t.last_error
let degraded_devices t = Ctx.degraded_devices t.ctx

let check_once t =
  let m = (Ctx.cfg t.ctx).Config.max_clients in
  let suspects = ref [] in
  for cid = 0 to m - 1 do
    match Client.status t.ctx ~cid with
    | Client.Alive ->
        let h = Client.heartbeat_value t.ctx ~cid in
        if h = t.last_seen.(cid) then begin
          t.stale.(cid) <- t.stale.(cid) + 1;
          if t.stale.(cid) >= t.misses then begin
            Client.declare_failed t.ctx ~cid;
            (* Forensics before recovery touches anything: the dead
               client's last ring events show the op it died inside. *)
            let events =
              Trace.dump t.ctx.Ctx.mem t.ctx.Ctx.lay ~cid
                ~last:death_dump_events ()
            in
            t.death_dumps <- (cid, events) :: t.death_dumps;
            suspects := cid :: !suspects
          end
        end
        else begin
          t.last_seen.(cid) <- h;
          t.stale.(cid) <- 0
        end
    | Client.Slot_free | Client.Failed ->
        t.last_seen.(cid) <- -1;
        t.stale.(cid) <- 0
  done;
  List.rev !suspects

let recover_suspects t =
  let m = (Ctx.cfg t.ctx).Config.max_clients in
  let out = ref [] in
  (match Recovery.resume_interrupted t.ctx with
  | Some _ -> ()
  | None -> ());
  for cid = 0 to m - 1 do
    if Client.status t.ctx ~cid = Client.Failed then
      out := (cid, Recovery.recover t.ctx ~failed_cid:cid) :: !out
  done;
  List.rev !out

let run_in_domain t ~interval =
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          (* The monitor is the component everything else relies on for
             liveness; one poisoned read or half-recovered client must not
             silently kill its domain. Count the failure, remember it, and
             keep watching — the next iteration retries from scratch. *)
          (try
             ignore (check_once t);
             ignore (recover_suspects t);
             ignore
               (Reclaim.scan_all t.ctx ~is_client_alive:(fun cid ->
                    Client.is_alive t.ctx ~cid))
           with e ->
             Atomic.incr t.errors;
             Atomic.set t.last_error (Some e));
          Unix.sleepf interval
        done)
  in
  (d, stop)

let stop_and_join (d, stop) t =
  Atomic.set stop true;
  Domain.join d;
  last_error t
