(* Client and monitor-leader leases over the shared logical lease clock.
   Status-word values are raw ints here (kept in sync with
   [Client.status_to_int]) so [Client] can depend on this module. *)

let st_alive = 1
let st_failed = 2
let st_suspected = 3
let now (ctx : Ctx.t) = Ctx.load ctx (Layout.hdr_lease_clock ctx.Ctx.lay)
let tick (ctx : Ctx.t) = Ctx.fetch_add ctx (Layout.hdr_lease_clock ctx.Ctx.lay) 1 + 1
let ttl ctx = (Ctx.cfg ctx).Config.lease_ttl

let deadline (ctx : Ctx.t) ~cid =
  Ctx.load ctx (Layout.client_lease_deadline ctx.Ctx.lay cid)

let era (ctx : Ctx.t) ~cid = Ctx.load ctx (Layout.client_lease_era ctx.Ctx.lay cid)

let renew (ctx : Ctx.t) ~cid =
  Ctx.store ctx (Layout.client_lease_deadline ctx.Ctx.lay cid) (now ctx + ttl ctx)

let grant (ctx : Ctx.t) ~cid =
  let e = Ctx.fetch_add ctx (Layout.client_lease_era ctx.Ctx.lay cid) 1 + 1 in
  renew ctx ~cid;
  e

let release (ctx : Ctx.t) ~cid =
  Ctx.store ctx (Layout.client_lease_deadline ctx.Ctx.lay cid) 0

let expired ctx ~cid =
  let d = deadline ctx ~cid in
  d <> 0 && now ctx > d

let try_suspect (ctx : Ctx.t) ~cid =
  expired ctx ~cid
  && Ctx.cas ctx
       (Layout.client_flags ctx.Ctx.lay cid)
       ~expected:st_alive ~desired:st_suspected

let try_condemn (ctx : Ctx.t) ~cid =
  (* Grace period: a suspected client keeps its (stale) deadline, so
     condemnation waits a second full TTL past it — one TTL of silence made
     it Suspected, another makes it Failed. The CAS itself fences against
     every rescue path: a heartbeat self-heal (3 → 1), a clean unregister
     (3 → 0) or a slot recycle all change the flags word first. *)
  let d = deadline ctx ~cid in
  d <> 0
  && now ctx > d + ttl ctx
  && Ctx.cas ctx
       (Layout.client_flags ctx.Ctx.lay cid)
       ~expected:st_suspected ~desired:st_failed

let self_heal (ctx : Ctx.t) ~cid =
  Ctx.cas ctx
    (Layout.client_flags ctx.Ctx.lay cid)
    ~expected:st_suspected ~desired:st_alive

(* Monitor leader lease, packed in one word so election, renewal and
   deposition are each a single CAS on [Layout.hdr_leader]. *)

type lead = Follower | Leader | Took_over

let leader (ctx : Ctx.t) =
  Layout.leader_unpack (Ctx.load ctx (Layout.hdr_leader ctx.Ctx.lay))

let try_lead (ctx : Ctx.t) ~id =
  let addr = Layout.hdr_leader ctx.Ctx.lay in
  let w = Ctx.load ctx addr in
  let desired = Layout.leader_pack ~id ~deadline:(now ctx + ttl ctx) in
  let swing () = Ctx.cas ctx addr ~expected:w ~desired in
  match Layout.leader_unpack w with
  | None ->
      if swing () then begin
        Ctx.crash_point ctx Fault.Lead_after_acquire;
        Leader
      end
      else Follower
  | Some (lid, _) when lid = id ->
      (* Renewal must CAS, not store: a concurrent deposition may have
         already taken the word, and overwriting it would fork leadership. *)
      if swing () then Leader else Follower
  | Some (_, dl) when now ctx > dl ->
      if swing () then begin
        Ctx.crash_point ctx Fault.Lead_after_acquire;
        Took_over
      end
      else Follower
  | Some _ -> Follower

let abdicate (ctx : Ctx.t) ~id =
  let addr = Layout.hdr_leader ctx.Ctx.lay in
  let w = Ctx.load ctx addr in
  match Layout.leader_unpack w with
  | Some (lid, _) when lid = id -> ignore (Ctx.cas ctx addr ~expected:w ~desired:0)
  | _ -> ()
