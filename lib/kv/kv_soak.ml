open Cxlshm
module Mem = Cxlshm_shmem.Mem

type report = {
  ka_seed : int;
  ka_steps : int;
  ka_writer_cid : int;
  ka_writer_crashed : bool;
  ka_journaled : int;
  ka_adopted : int;
  ka_pinned : int;
  ka_pinned_freed : int;
  ka_clean : bool;
}

let pp_report ppf k =
  Format.fprintf ppf
    "seed=%-6d steps=%-5d writer=cid%d crashed=%b journaled=%d adopted=%d \
     pinned=%d pinned-freed=%d %s"
    k.ka_seed k.ka_steps k.ka_writer_cid k.ka_writer_crashed k.ka_journaled
    k.ka_adopted k.ka_pinned k.ka_pinned_freed
    (if k.ka_clean then "clean" else "** DIRTY **")

(* The KV control-plane soak: a writer COW-churns a small store under
   fault injection, a reader pins a hazard era mid-walk, and the writer is
   killed at the first free inside its reclamation pass — mid-quiesce,
   with its persistent parked-record registry part-cleared. The monitor
   condemns and recovers it (journaling the registry), a successor takes
   over the partition and adopts the journaled records with their retire
   stamps intact, and the verdict is: no era-pinned record was freed,
   adoption moved every journaled record, and the arena is fsck-clean with
   counts matching reachability. Deterministic in [seed]. *)
let writer_kill_adopt ?(steps = 200) ~seed () =
  let cfg =
    {
      Config.small with
      Config.backend =
        Mem.Striped { devices = 4; stripe_words = 0; tiers = [||] };
      lease_ttl = 2;
    }
  in
  let arena = Shm.create ~cfg () in
  let w = Shm.join arena () in
  let r = Shm.join arena () in
  let s = Shm.join arena () in
  let store, hw = Cxl_kv.create w ~buckets:4 ~partitions:1 ~value_words:2 in
  if not (Cxl_kv.claim_partition hw 0) then
    failwith "writer_kill_adopt: claim failed";
  let hr = Cxl_kv.open_store r store in
  let hs = Cxl_kv.open_store s store in
  let rng = Random.State.make [| 0x61646f70; seed |] in
  let keys = 12 in
  for k = 0 to keys - 1 do
    Cxl_kv.put hw ~key:k ~value:(1000 + k)
  done;
  (* Steady churn: COW updates park displaced records, periodic quiesce
     recycles them, reader traffic announces and retires eras. *)
  for i = 1 to steps do
    let k = Random.State.int rng keys in
    (match Random.State.int rng 3 with
    | 0 | 1 -> Cxl_kv.put_cow hw ~key:k ~value:i
    | _ -> ignore (Cxl_kv.get hr ~key:k));
    if i mod 32 = 0 then Cxl_kv.quiesce hw;
    Client.heartbeat w;
    Client.heartbeat r;
    Client.heartbeat s
  done;
  Cxl_kv.quiesce hw;
  (* Batch A parks before the reader pins (reclaimable), batch B after
     (era-pinned): the quiesce below starts freeing batch A and dies at
     the first free, leaving the registry holding the rest. *)
  for k = 0 to (keys / 2) - 1 do
    Cxl_kv.put_cow hw ~key:k ~value:(3000 + k)
  done;
  Hazard.enter r;
  for k = keys / 2 to keys - 1 do
    Cxl_kv.put_cow hw ~key:k ~value:(4000 + k)
  done;
  (* Snapshot the writer's persistent registry: (obj, stamp) per slot. *)
  let mem = Shm.mem arena in
  let lay = Shm.layout arena in
  let peek = Mem.unsafe_peek mem in
  let parked = ref [] in
  for k = 0 to Layout.park_capacity lay - 1 do
    let rr = peek (Layout.park_slot_rr lay w.Ctx.cid k) in
    if rr <> 0 then
      parked :=
        (peek (Rootref.pptr_slot rr), peek (Layout.park_slot_stamp lay w.Ctx.cid k))
        :: !parked
  done;
  let svc = Shm.service_ctx arena in
  let safe = Hazard.min_announced svc in
  let pinned = List.filter (fun (_, stamp) -> stamp >= safe) !parked in
  (* Kill the writer at the first free inside its reclamation pass. *)
  w.Ctx.fault <- Fault.at Fault.Release_mid_reclaim ~nth:1;
  let writer_crashed =
    match Cxl_kv.quiesce hw with
    | () -> false
    | exception Fault.Crashed _ -> true
  in
  w.Ctx.fault <- Fault.none;
  (* The monitor condemns the silent writer and recovers it: recovery
     moves the registry into the arena adoption journal. *)
  let mon = Monitor.create ~mem ~lay:(Shm.layout arena) () in
  let journaled = ref 0 in
  let recovered = ref false in
  let guard = ref 0 in
  let budget = 10 * (cfg.Config.lease_ttl + 2) in
  while (not !recovered) && !guard < budget do
    Client.heartbeat r;
    Client.heartbeat s;
    ignore (Monitor.check_once mon);
    List.iter
      (fun (cid, rep) ->
        if cid = w.Ctx.cid then begin
          recovered := true;
          journaled := rep.Recovery.parked_journaled
        end)
      (Monitor.recover_suspects mon);
    incr guard
  done;
  (* Successor failover: steal the partition, adopt the journaled parked
     records, stamps intact. *)
  ignore (Cxl_kv.takeover_partition hs 0);
  let adopted = Cxl_kv.adopt_recovered hs in
  (* No era-pinned record may have been freed by the crash recovery. *)
  let pinned_freed =
    List.fold_left
      (fun acc (obj, _) -> if peek obj = 0 then acc + 1 else acc)
      0 pinned
  in
  (* Wind down: unpin, let the successor reclaim everything, and judge. *)
  Hazard.exit r;
  Cxl_kv.quiesce hs;
  Cxl_kv.close hr;
  Cxl_kv.close hs;
  Shm.leave r;
  Shm.leave s;
  ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
  let fsck = Fsck.repair svc in
  {
    ka_seed = seed;
    ka_steps = steps;
    ka_writer_cid = w.Ctx.cid;
    ka_writer_crashed = writer_crashed;
    ka_journaled = !journaled;
    ka_adopted = adopted;
    ka_pinned = List.length pinned;
    ka_pinned_freed = pinned_freed;
    ka_clean = Fsck.clean fsck;
  }
