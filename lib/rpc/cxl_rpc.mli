(** CXL-RPC: pass-by-reference RPC with pointer isolation (§6.3 + RPCool).

    A call allocates one rpc_msg carrying embedded references to the inputs
    and the output object, then moves a {e single reference} through the
    §5.2 transfer queue. The server reads arguments and writes the result
    in place — zero copies, no serialisation, no I/O stack — then raises
    the message's completion word; the client polls that word directly
    through its own retained reference (no response message).

    {b Pointer isolation.} Each channel owns a private sub-heap: segments
    the client claims at {!connect} and publishes in the queue directory's
    registry words. {!alloc_arg} and {!call_async} place arguments, output
    and the message itself inside that sub-heap (never claiming more
    segments — exhausting the sub-heap is [Out_of_shared_memory]). On
    receive the server walks the message closure and checks every embedded
    reference is the base of a live block {e inside} the channel sub-heap;
    an out-of-channel or wild pointer rejects the call with an error
    completion ({!Call_rejected} at the client) without ever dereferencing
    the hostile word.

    {b Liveness.} Every spin — send on a full ring, {!finish} polling the
    completion word, the server waiting for a connect — re-reads the peer's
    membership and lease words and raises {!Peer_failed} once the peer is
    declared failed or its lease lapses, with backoff pacing from the
    context's {!Cxlshm.Retry} policy. If either side dies mid-call the
    recovery service reaps the in-flight message (and through its embedded
    references the argument/output objects) with no leak, double free or
    wild pointer, and channel revocation returns the emptied sub-heap to
    the arena. *)

exception Peer_failed of string
(** The peer endpoint failed (declared dead or lease lapsed) while we were
    waiting on it. *)

exception Call_rejected of string
(** The server's validation walk refused the call: the message closure
    reached an out-of-channel or wild pointer. *)

type client
type server

val connect :
  ?sub_heap_segments:int ->
  Cxlshm.Ctx.t -> server_cid:int -> capacity:int -> client
(** Claim [sub_heap_segments] (default 1, at most
    {!Cxlshm.Layout.queue_max_channel_segs}) as the channel's private
    sub-heap, connect the transfer queue with the sub-heap published in its
    directory registry, and exclude the sub-heap from this client's
    ordinary allocation. *)

val channel_segments : client -> int list
(** The channel's private sub-heap (for tests and diagnostics). *)

val accept : Cxlshm.Ctx.t -> client_cid:int -> capacity:int -> server
(** Call before or concurrently with [connect]. *)

val alloc_arg :
  client -> size_bytes:int -> ?emb_cnt:int -> unit -> Cxlshm.Cxl_ref.t
(** Allocate an argument object inside the channel sub-heap. Objects
    allocated any other way fail the server's validation walk. Raises
    [Alloc.Out_of_shared_memory] when the sub-heap is exhausted (it never
    grows) and for huge sizes (a segment run cannot live in-channel). *)

type pending
(** An in-flight call: the client's retained message reference plus the
    output handle. *)

val call_async :
  client -> func:int -> args:Cxlshm.Cxl_ref.t list -> output_bytes:int -> pending
(** Fire a request. The output object and the message are carved inside the
    channel sub-heap; [args] must have been allocated with {!alloc_arg}.
    The send is bounded: on a full ring it backs off and re-checks the
    server's lease, raising {!Peer_failed} if the server is gone. The
    caller keeps ownership of the argument handles. *)

val is_done : pending -> bool
(** Poll the completion word — one shared load, plus an acquire fence once
    it reads non-zero so the caller's subsequent output reads are ordered
    after it (pairing with the server's pre-status release fence). *)

val finish : pending -> Cxlshm.Cxl_ref.t
(** Wait until done, release the message, return the caller-owned output.
    Bounded: polls with backoff, re-checking the server's lease and the
    queue's closed flag; raises {!Peer_failed} if the server dies mid-call
    (after one final completion re-check to close the race with a server
    that finished just before dying), {!Call_rejected} if validation
    refused the call, [Invalid_argument] on a second finish of the same
    pending. *)

val try_finish : pending -> Cxlshm.Cxl_ref.t option
(** [Some output] if complete (may raise {!Call_rejected}); [None] if still
    pending. Raises [Invalid_argument] if already finished. *)

val discard : pending -> unit
(** Drop the client-held message and output handles without waiting for
    completion — harness cleanup for a call abandoned because the server
    died. Idempotent; a no-op after {!finish}. *)

val call :
  client -> func:int -> args:Cxlshm.Cxl_ref.t list -> output_bytes:int ->
  Cxlshm.Cxl_ref.t
(** [finish (call_async ...)]. *)

type handler = func:int -> args:Message.view list -> output:Message.view -> unit

val serve_one : server -> handler:handler -> bool
(** Handle one pending request; [false] when the ring is empty. Validates
    the message closure first (see module doc); rejected calls never reach
    [handler] — they are counted in {!rejected_calls} and completed with an
    error status. Raises {!Peer_failed} while waiting for a connect from a
    client that died first. *)

val serve_until : server -> handler:handler -> stop:bool Atomic.t -> unit

val rejected_calls : server -> int
(** Calls refused by the validation walk since [accept]. *)

val allow_peer_segments : server -> unit
(** Opt-in trust extension (RPCool's attached shared heap): the validation
    walk additionally accepts blocks homed in segments the {e peer client
    itself owns} — for workloads that pass large peer-allocated data by
    reference across many channels (e.g. mapreduce chunks, a shared
    centroid table). Third-party and unowned segments are still rejected,
    wild pointers are still rejected, and the walk still recurses through
    accepted blocks, so a peer-owned object cannot launder a reference
    into someone else's heap. Off by default; server-side and local (trust
    is the receiver's to extend). *)

val close_client : client -> unit
(** Close the queue endpoint, lift the sub-heap exclusion, and return every
    provably empty sub-heap segment to the arena (flushing this context's
    retirement batch first so pending drops land). Idempotent. *)

val close_server : server -> unit
(** Close the queue endpoint and, if the claiming client is dead, revoke
    its sub-heap: recovery deliberately leaves a channel segment orphaned
    while a live peer still holds the queue (recycling it under an
    in-flight serve would be a use-after-free), so the surviving server
    returns whatever is empty once the queue is torn down. A live
    claimant keeps ownership and releases in {!close_client} instead.
    Idempotent. *)

(** {1 Test-only mutation switches}

    For the model checker's mutation self-check (docs/TESTING.md); must
    stay [false] everywhere else. *)

val mutation_skip_validate : bool ref
(** Skip the receive-side validation walk — the [rpc-skip-validate]
    explorer mutation; the planted out-of-channel pointer must then reach
    the handler and trip the oracle. *)

val mutation_unfenced_status : bool ref
(** Publish the completion word {e before} the handler runs, the reordering
    the historical missing release/acquire pair permitted — the
    [rpc-unfenced-status] explorer mutation; the client must then observe
    stale output bytes under a raised completion word. *)
