(** Lightning-KV baseline (Fig 10a): an object store in the architecture of
    Lightning [VLDB'22] — shared-memory reads, but every mutation goes
    through a {e lock-based buddy allocator} plus per-operation undo-log
    writes for crash consistency. The paper attributes Lightning's one to
    three orders of magnitude throughput gap to exactly this memory
    management path; all mutation costs here serialise behind the global
    buddy lock ({!serial_stats}). *)

type store
type handle

val name : string

val create : buckets:int -> value_words:int -> words:int -> threads:int -> store
val handle : store -> int -> handle
val stats : handle -> Cxlshm_shmem.Stats.t
val serial_stats : store -> Cxlshm_shmem.Stats.t
val tier : store -> Cxlshm_shmem.Latency.tier

val get : handle -> key:int -> int option
val put : handle -> key:int -> value:int -> unit
val delete : handle -> key:int -> bool
