type t = {
  mean_gap_ns : float;
  rng : Random.State.t;
  mutable clock_ns : float;
}

let create ~rate_mops ~seed =
  if rate_mops <= 0.0 then invalid_arg "Load_gen.create: rate must be > 0";
  {
    mean_gap_ns = 1000.0 /. rate_mops;
    rng = Random.State.make [| seed; 0xA9 |];
    clock_ns = 0.0;
  }

let rate_mops t = 1000.0 /. t.mean_gap_ns

let next_arrival t =
  (* Poisson arrivals: exponential inter-arrival gaps. [1 - u] keeps the
     log argument away from 0 ([Random.State.float] can return 0). *)
  let u = Random.State.float t.rng 1.0 in
  t.clock_ns <- t.clock_ns -. (t.mean_gap_ns *. log (1.0 -. u));
  t.clock_ns

let now_ns t = t.clock_ns
