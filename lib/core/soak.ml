(* Crash × device-fault soak harness.

   One soak run = the §6.2.2 randomized multi-client workload under a
   crash-point plan AND a device-fault schedule, followed by the full
   resilience pipeline: disarm injection (the devices get "serviced"),
   crash-recover every client, validate, fsck-repair, validate again. The
   run passes iff the post-fsck arena is clean.

   Everything is deterministic in (backend, schedule, point, seed): the
   workload RNG, the crash plan and the device-fault RNG all derive from
   the run's seed, so a failing run replays exactly from the JSON record
   the sweep emits. *)

module Mem = Cxlshm_shmem.Mem
module Stats = Cxlshm_shmem.Stats
module Bf = Cxlshm_shmem.Backend_faulty

(* ------------------------------------------------------------------ *)
(* Device-fault schedules                                              *)
(* ------------------------------------------------------------------ *)

type schedule = {
  sname : string;
  read_poison : float;
  torn_write : float;
  stuck_word : float;
  offline : (int * int * int) list;
}

let quiet_schedule =
  { sname = "quiet"; read_poison = 0.; torn_write = 0.; stuck_word = 0.; offline = [] }

let default_schedules =
  [
    quiet_schedule;
    (* transient-only: retries should absorb nearly everything *)
    { sname = "transient"; read_poison = 0.002; torn_write = 0.001;
      stuck_word = 0.; offline = [] };
    (* persistent damage: stuck media + tears that a dying client leaves *)
    { sname = "stuck"; read_poison = 0.0005; torn_write = 0.001;
      stuck_word = 0.0008; offline = [] };
    (* device outage windows over the op counter *)
    { sname = "offline"; read_poison = 0.0005; torn_write = 0.;
      stuck_word = 0.; offline = [ (0, 4_000, 4_800); (1, 9_000, 10_000) ] };
  ]

let is_quiet s =
  s.read_poison = 0. && s.torn_write = 0. && s.stuck_word = 0. && s.offline = []

let fault_spec_of s ~seed =
  {
    Bf.seed;
    read_poison = s.read_poison;
    torn_write = s.torn_write;
    stuck_word = s.stuck_word;
    offline = s.offline;
  }

let default_backends =
  [
    ("flat", Mem.Flat);
    ("striped4", Mem.Striped { devices = 4; stripe_words = 0; tiers = [||] });
  ]

(* ------------------------------------------------------------------ *)
(* One run                                                             *)
(* ------------------------------------------------------------------ *)

type run = {
  backend : string;
  schedule : string;
  point : string;  (** crash-point name, or "none" *)
  seed : int;
  steps : int;
  crashes : (int * string) list;  (** (cid, cause) in crash order *)
  dev_faults : int;
  retries : int;
  backoff_ns : float;
  escalations : int;
  injected : (string * int) list;  (** per fault class, from the backend *)
  degraded : int list;  (** devices left degraded before servicing *)
  sweep_errors : int;  (** recovery attempts that raised, pre-fsck *)
  pre_clean : bool;  (** validation verdict after recovery, before fsck *)
  fsck : Fsck.report;
  clean : bool;  (** the run's verdict: post-fsck validation *)
}

let n_clients = 3

let run_one ~backend:(bname, bspec) ~schedule ~point ~seed ~steps =
  let backend =
    if is_quiet schedule then bspec
    else Mem.Faulty { base = bspec; fault_spec = fault_spec_of schedule ~seed }
  in
  let cfg = { Config.small with Config.backend } in
  let arena = Shm.create ~cfg () in
  let clients = Array.init n_clients (fun _ -> Shm.join arena ()) in
  (match point with
  | Some p -> clients.(0).Ctx.fault <- Fault.at p ~nth:1
  | None -> ());
  (* setup done on healthy devices; the fault campaign starts here *)
  Shm.set_fault_injection arena true;
  let rng = Random.State.make [| 0x50ac; seed |] in
  let held = Array.make n_clients [] in
  (* acyclic object graph: embedded links only old -> new (see
     test_fault_injection for the rationale — refcounting keeps cycles) *)
  let birth : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let birth_counter = ref 0 in
  let stamp obj = try Hashtbl.find birth obj with Not_found -> max_int in
  let send_queues : (int * int, Transfer.t) Hashtbl.t = Hashtbl.create 8 in
  let recv_queues : (int * int, Transfer.t) Hashtbl.t = Hashtbl.create 8 in
  let crashed = Array.make n_clients None in
  let note_crash who cause =
    if crashed.(who) = None then crashed.(who) <- Some cause
  in
  let step who =
    let c = clients.(who) in
    match Random.State.int rng 8 with
    | 0 | 1 ->
        let emb = Random.State.int rng 3 in
        let r =
          Shm.cxl_malloc c ~size_bytes:(8 + Random.State.int rng 56)
            ~emb_cnt:emb ()
        in
        incr birth_counter;
        Hashtbl.replace birth (Cxl_ref.obj r) !birth_counter;
        held.(who) <- r :: held.(who)
    | 2 -> (
        match held.(who) with
        | r :: _ -> held.(who) <- Cxl_ref.clone r :: held.(who)
        | [] -> ())
    | 3 -> (
        match held.(who) with
        | r :: rest ->
            held.(who) <- rest;
            Cxl_ref.drop r
        | [] -> ())
    | 4 -> (
        match held.(who) with
        | p :: ch :: _
          when Cxl_ref.emb_cnt p > 0
               && stamp (Cxl_ref.obj p) < stamp (Cxl_ref.obj ch) ->
            let i = Random.State.int rng (Cxl_ref.emb_cnt p) in
            if Cxl_ref.get_emb p i = 0 then Cxl_ref.set_emb p i ch
            else if stamp (Cxl_ref.get_emb p i) < stamp (Cxl_ref.obj ch) then
              Cxl_ref.change_emb p i ch
        | _ -> ())
    | 5 -> (
        match held.(who) with
        | p :: _ when Cxl_ref.emb_cnt p > 0 ->
            Cxl_ref.clear_emb p (Random.State.int rng (Cxl_ref.emb_cnt p))
        | _ -> ())
    | 6 -> (
        let peer = (who + 1 + Random.State.int rng (n_clients - 1)) mod n_clients in
        match held.(who) with
        | r :: _ ->
            let q =
              match Hashtbl.find_opt send_queues (who, peer) with
              | Some q -> q
              | None ->
                  let q =
                    Transfer.connect c ~receiver:clients.(peer).Ctx.cid
                      ~capacity:4
                  in
                  Hashtbl.replace send_queues (who, peer) q;
                  q
            in
            ignore (Transfer.send q r)
        | [] -> ())
    | 7 -> (
        let peer = (who + 1 + Random.State.int rng (n_clients - 1)) mod n_clients in
        match Hashtbl.find_opt recv_queues (peer, who) with
        | Some q -> (
            match Transfer.receive q with
            | Transfer.Received r -> held.(who) <- r :: held.(who)
            | Transfer.Empty | Transfer.Drained -> ())
        | None -> (
            match Transfer.open_from c ~sender:clients.(peer).Ctx.cid with
            | Some q -> Hashtbl.replace recv_queues (peer, who) q
            | None -> ()))
    | _ -> ()
  in
  (* Fail-stop model: whatever a step raises — an injected crash point, an
     escalated device fault, or a violation tripped by corrupted shared
     state — kills the stepping client. Its local refs are abandoned and it
     never touches the pool again. *)
  let s = ref 0 in
  while !s < steps && Array.exists (fun c -> c = None) crashed do
    let who = !s mod n_clients in
    if crashed.(who) = None then begin
      try step who with
      | Stack_overflow | Out_of_memory -> raise Out_of_memory
      | Fault.Crashed p -> note_crash who ("crash:" ^ p)
      | Mem.Device_error { fault; dev; _ } ->
          note_crash who
            (Printf.sprintf "device:%s@dev%d" (Mem.fault_class_name fault) dev)
      | Refc.Refcount_violation m -> note_crash who ("refcount:" ^ m)
      | Mem.Wild_pointer _ -> note_crash who "wild-pointer"
      | Alloc.Out_of_shared_memory -> note_crash who "out-of-shared-memory"
      | e -> note_crash who ("exn:" ^ Printexc.to_string e)
    end;
    incr s
  done;
  (* Sum per-client fault counters before recovery adds its own traffic. *)
  let dev_faults = ref 0 and retries = ref 0 and escal = ref 0 in
  let backoff = ref 0. in
  Array.iter
    (fun c ->
      dev_faults := !dev_faults + c.Ctx.st.Stats.dev_faults;
      retries := !retries + c.Ctx.st.Stats.retries;
      backoff := !backoff +. c.Ctx.st.Stats.backoff_ns;
      escal := !escal + c.Ctx.st.Stats.fault_escalations)
    clients;
  let injected = Mem.injected_faults (Shm.mem arena) in
  let degraded = Ctx.degraded_devices clients.(0) in
  (* Devices get serviced before recovery runs: no new faults, stuck media
     replaced. The corruption already in the pool stays. *)
  Shm.set_fault_injection arena false;
  let svc = Shm.service_ctx arena in
  let sweep_errors = ref 0 in
  let recover_cid cid =
    Client.declare_failed svc ~cid;
    try ignore (Recovery.recover svc ~failed_cid:cid)
    with _ -> incr sweep_errors
  in
  Array.iteri
    (fun i c -> if crashed.(i) <> None then recover_cid c.Ctx.cid)
    clients;
  (* Survivors drop what they hold and leave; shared state damaged by the
     faults can make even a drop raise — that survivor then counts as
     crashed at exit and is recovered like the others. *)
  Array.iteri
    (fun i c ->
      if crashed.(i) = None then begin
        c.Ctx.fault <- Fault.none;
        (try
           List.iter
             (fun r -> if Cxl_ref.is_live r then Cxl_ref.drop r)
             held.(i)
         with _ -> note_crash i "exit-drop-failed");
        recover_cid c.Ctx.cid
      end)
    clients;
  (try ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false))
   with _ -> incr sweep_errors);
  let pre = Validate.run (Shm.mem arena) (Shm.layout arena) in
  let fsck = Fsck.repair svc in
  {
    backend = bname;
    schedule = schedule.sname;
    point = (match point with Some p -> Fault.point_name p | None -> "none");
    seed;
    steps;
    crashes =
      Array.to_list crashed
      |> List.mapi (fun i c -> (i, c))
      |> List.filter_map (fun (i, c) -> Option.map (fun c -> (i, c)) c);
    dev_faults = !dev_faults;
    retries = !retries;
    backoff_ns = !backoff;
    escalations = !escal;
    injected =
      List.map (fun (c, n) -> (Mem.fault_class_name c, n)) injected;
    degraded;
    sweep_errors = !sweep_errors;
    pre_clean = Validate.is_clean pre;
    fsck;
    clean = Fsck.clean fsck;
  }

(* ------------------------------------------------------------------ *)
(* Monitor-kill failover schedule                                      *)
(* ------------------------------------------------------------------ *)

type failover = {
  fo_seed : int;
  fo_steps : int;
  hung_cid : int;  (** the client that went silent under load *)
  leader_crashed : bool;  (** replica 0 died inside the recovery it led *)
  follower_finished : bool;  (** replica 1 freed the hung client's slot *)
  fo_degraded : int;  (** the device drained after the takeover *)
  live_segments_left : int;  (** live segments still on it at the end *)
  fo_clean : bool;  (** final post-fsck validation *)
}

let pp_failover ppf f =
  Format.fprintf ppf
    "seed=%-6d steps=%-5d hung=cid%d leader-crashed=%b follower-finished=%b \
     dev%d-live-left=%d %s"
    f.fo_seed f.fo_steps f.hung_cid f.leader_crashed f.follower_finished
    f.fo_degraded f.live_segments_left
    (if f.fo_clean then "clean" else "** DIRTY **")

(* The control-plane soak: a linked workload, one client hangs (alive but
   silent), the leader monitor is killed inside the recovery it started,
   and the follower must depose it, finish that recovery mid-flight, and
   then drain a fully-degraded device to zero live segments. Deterministic
   in [seed] — no domains, the monitors interleave synchronously. *)
let monitor_kill ?(steps = 300) ~seed () =
  let cfg =
    {
      Config.small with
      Config.backend = Mem.Striped { devices = 4; stripe_words = 0; tiers = [||] };
      lease_ttl = 2;
    }
  in
  let arena = Shm.create ~cfg () in
  let n = 3 in
  let clients = Array.init n (fun _ -> Shm.join arena ()) in
  let rng = Random.State.make [| 0x4d6f6e; seed |] in
  let held = Array.make n [] in
  (* Parent links only point at older objects (held is newest-first), so
     the graph stays acyclic under refcounting. *)
  for s = 0 to steps - 1 do
    let who = s mod n in
    let c = clients.(who) in
    (match Random.State.int rng 4 with
    | 0 | 1 ->
        let r =
          Shm.cxl_malloc c
            ~size_bytes:(8 + Random.State.int rng 40)
            ~emb_cnt:(Random.State.int rng 2)
            ()
        in
        held.(who) <- r :: held.(who)
    | 2 -> (
        match held.(who) with
        | p :: ch :: _ when Cxl_ref.emb_cnt p > 0 && Cxl_ref.get_emb p 0 = 0 ->
            Cxl_ref.set_emb p 0 ch
        | _ -> ())
    | _ -> (
        match held.(who) with
        | r :: rest ->
            held.(who) <- rest;
            Cxl_ref.drop r
        | [] -> ()));
    Client.heartbeat c
  done;
  (* Client 0 hangs: the process is alive and still holds everything, but
     it stops renewing its lease. *)
  let hung = clients.(0) in
  let svc = Shm.service_ctx arena in
  let mon0 = Monitor.create ~mem:(Shm.mem arena) ~lay:(Shm.layout arena) () in
  let mon1 =
    Monitor.create ~mem:(Shm.mem arena) ~lay:(Shm.layout arena) ~id:1 ()
  in
  let survivors_beat () =
    for i = 1 to n - 1 do
      Client.heartbeat clients.(i)
    done
  in
  let budget = 10 * (cfg.Config.lease_ttl + 2) in
  let condemned = ref false in
  let guard = ref 0 in
  while (not !condemned) && !guard < budget do
    survivors_beat ();
    if List.mem hung.Ctx.cid (Monitor.check_once mon0) then condemned := true;
    incr guard
  done;
  (* The leader dies inside the recovery it just started. *)
  (Monitor.ctx mon0).Ctx.fault <- Fault.at Fault.Recovery_mid_phases ~nth:1;
  let leader_crashed =
    match Monitor.recover_suspects mon0 with
    | _ -> false
    | exception Fault.Crashed _ -> true
  in
  (* The follower's own passes tick the shared clock past the dead
     leader's lease; its takeover resumes the interrupted recovery before
     sweeping the Failed list. *)
  let finished () = Client.status svc ~cid:hung.Ctx.cid = Client.Slot_free in
  let guard = ref 0 in
  while (not (finished ())) && !guard < budget do
    survivors_beat ();
    ignore (Monitor.check_once mon1);
    ignore (Monitor.recover_suspects mon1);
    incr guard
  done;
  let follower_finished = finished () in
  (* Drain device 0 completely: survivors relocate what only they may
     touch (their RootRef blocks), the new leader sweeps the rest —
     including the hung client's recovered-but-still-referenced data. *)
  let dev = 0 in
  Ctx.mark_degraded svc dev;
  for i = 1 to n - 1 do
    let c = clients.(i) in
    let rep = Evacuate.relocate_own c in
    held.(i) <-
      List.map
        (fun r ->
          match List.assoc_opt (Cxl_ref.rootref r) rep.Evacuate.remapped with
          | Some rr2 -> Cxl_ref.of_rootref c rr2
          | None -> r)
        held.(i)
  done;
  ignore (Monitor.evacuate_degraded mon1);
  let live_segments_left = List.length (Evacuate.live_segments_on svc ~dev) in
  (* Wind down and judge the arena. *)
  Array.iteri
    (fun i c ->
      if i > 0 then begin
        List.iter (fun r -> if Cxl_ref.is_live r then Cxl_ref.drop r) held.(i);
        Shm.leave c
      end)
    clients;
  ignore (Reclaim.scan_all svc ~is_client_alive:(fun _ -> false));
  Ctx.clear_degraded svc;
  let fsck = Fsck.repair svc in
  {
    fo_seed = seed;
    fo_steps = steps;
    hung_cid = hung.Ctx.cid;
    leader_crashed;
    follower_finished;
    fo_degraded = dev;
    live_segments_left;
    fo_clean = Fsck.clean fsck;
  }

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)
(* ------------------------------------------------------------------ *)

let mix_seed ~base ~bi ~si ~pi = base + (1_000_003 * bi) + (10_007 * si) + (101 * pi)

let run_matrix ?(backends = default_backends) ?(schedules = default_schedules)
    ?(points = None :: List.map Option.some Fault.all_points) ~seed ~steps () =
  List.concat_map
    (fun (bi, backend) ->
      List.concat_map
        (fun (si, schedule) ->
          List.map
            (fun (pi, point) ->
              run_one ~backend ~schedule ~point
                ~seed:(mix_seed ~base:seed ~bi ~si ~pi)
                ~steps)
            (List.mapi (fun i p -> (i, p)) points))
        (List.mapi (fun i s -> (i, s)) schedules))
    (List.mapi (fun i b -> (i, b)) backends)

let failures runs = List.filter (fun r -> not r.clean) runs

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_run ppf r =
  Format.fprintf ppf
    "%-8s %-9s %-28s seed=%-10d crashes=%d faults=%d retries=%d esc=%d %s%s"
    r.backend r.schedule r.point r.seed (List.length r.crashes) r.dev_faults
    r.retries r.escalations
    (if r.pre_clean then "pre-clean" else "pre-DIRTY")
    (if r.clean then "" else "  ** FAIL **")

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let run_to_json r =
  let crash_json (cid, cause) =
    Printf.sprintf "{\"cid\":%d,\"cause\":\"%s\"}" cid (json_escape cause)
  in
  let inj_json (name, n) = Printf.sprintf "\"%s\":%d" name n in
  let f = r.fsck in
  Printf.sprintf
    "{\"backend\":\"%s\",\"schedule\":\"%s\",\"point\":\"%s\",\"seed\":%d,\
     \"steps\":%d,\"crashes\":[%s],\"dev_faults\":%d,\"retries\":%d,\
     \"backoff_ns\":%.0f,\"escalations\":%d,\"injected\":{%s},\
     \"degraded_devices\":[%s],\"sweep_errors\":%d,\"pre_clean\":%b,\
     \"fsck\":{\"quarantined\":%d,\"torn_cleared\":%d,\"wild_cleared\":%d,\
     \"unreachable_freed\":%d,\"counts_fixed\":%d,\"chains_rebuilt\":%d},\
     \"clean\":%b}"
    (json_escape r.backend) (json_escape r.schedule) (json_escape r.point)
    r.seed r.steps
    (String.concat "," (List.map crash_json r.crashes))
    r.dev_faults r.retries r.backoff_ns r.escalations
    (String.concat "," (List.map inj_json r.injected))
    (String.concat "," (List.map string_of_int r.degraded))
    r.sweep_errors r.pre_clean f.Fsck.pages_quarantined
    f.Fsck.torn_headers_cleared f.Fsck.wild_refs_cleared
    f.Fsck.unreachable_freed f.Fsck.counts_fixed f.Fsck.chains_rebuilt r.clean

let matrix_to_json ~seed runs =
  let fails = failures runs in
  Printf.sprintf
    "{\"base_seed\":%d,\"total\":%d,\"failures\":%d,\"failing_runs\":[%s],\
     \"runs\":[\n%s\n]}"
    seed (List.length runs) (List.length fails)
    (String.concat ","
       (List.map
          (fun r ->
            Printf.sprintf
              "{\"backend\":\"%s\",\"schedule\":\"%s\",\"point\":\"%s\",\"seed\":%d}"
              (json_escape r.backend) (json_escape r.schedule)
              (json_escape r.point) r.seed)
          fails))
    (String.concat ",\n" (List.map run_to_json runs))
