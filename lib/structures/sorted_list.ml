open Cxlshm

(* Node layout: emb slot 0 = next; data +1 = key, +2.. = value words.
   The sentinel head is a node with key = min_int. *)
type t = {
  ctx : Ctx.t;
  head : Cxl_ref.t;
  value_words : int;
  mutable deferred : int list;
}

let node_next obj = Obj_header.emb_slot obj 0
let node_key (ctx : Ctx.t) obj = Ctx.load ctx (Obj_header.data_of_obj obj + 1)
let node_val_addr obj i = Obj_header.data_of_obj obj + 2 + i

let value_words_of (ctx : Ctx.t) obj =
  Obj_header.meta_data_words (Ctx.load ctx (Obj_header.meta_of_obj obj)) - 2

let create ctx ~value_words =
  if value_words < 1 then invalid_arg "Sorted_list.create";
  let head = Shm.cxl_malloc_words ctx ~data_words:(2 + value_words) ~emb_cnt:1 () in
  Ctx.store ctx (Obj_header.data_of_obj (Cxl_ref.obj head) + 1) min_int;
  { ctx; head; value_words; deferred = [] }

let handle_ref t = t.head

let attach ctx r =
  { ctx; head = r; value_words = value_words_of ctx (Cxl_ref.obj r); deferred = [] }

let quiesce t =
  List.iter (fun n -> Alloc.free_obj_block t.ctx n) t.deferred;
  t.deferred <- []

let close t =
  quiesce t;
  Cxl_ref.drop t.head

(* Find the rightmost node with key < [key]; returns (pred, succ). *)
let locate t ~key =
  let rec go pred =
    let succ = Ctx.load t.ctx (node_next pred) in
    if succ = 0 || node_key t.ctx succ >= key then (pred, succ) else go succ
  in
  go (Cxl_ref.obj t.head)

let write_value t node value =
  for i = 0 to t.value_words - 1 do
    Ctx.store t.ctx (node_val_addr node i) (value + i)
  done

let alloc_node t ~key ~value =
  let rr, node =
    Alloc.alloc_obj t.ctx ~data_words:(2 + t.value_words) ~emb_cnt:1
  in
  Ctx.store t.ctx (Obj_header.data_of_obj node + 1) key;
  write_value t node value;
  (rr, node)

(* Splice [node] between [pred] and [succ]: link node.next -> succ first,
   then atomically re-point pred.next from succ to node (§5.4), so readers
   always see a complete list. *)
let splice t ~pred ~succ ~node ~rr =
  if succ <> 0 then Refc.attach t.ctx ~ref_addr:(node_next node) ~refed:succ;
  (if succ = 0 then Refc.attach t.ctx ~ref_addr:(node_next pred) ~refed:node
   else ignore (Refc.change t.ctx ~ref_addr:(node_next pred) ~from_obj:succ ~to_obj:node));
  Reclaim.release_rootref t.ctx rr

let insert t ~key ~value =
  let pred, succ = locate t ~key in
  if succ <> 0 && node_key t.ctx succ = key then false
  else begin
    let rr, node = alloc_node t ~key ~value in
    splice t ~pred ~succ ~node ~rr;
    true
  end

let retire t node =
  Reclaim.teardown_children t.ctx ~as_cid:t.ctx.Ctx.cid ~obj:node;
  t.deferred <- node :: t.deferred

let replace t ~key ~value =
  let pred, succ = locate t ~key in
  if succ <> 0 && node_key t.ctx succ = key then begin
    (* out-of-place replace: readers never see a torn value *)
    let rr, node = alloc_node t ~key ~value in
    let after = Ctx.load t.ctx (node_next succ) in
    if after <> 0 then Refc.attach t.ctx ~ref_addr:(node_next node) ~refed:after;
    let n = Refc.change t.ctx ~ref_addr:(node_next pred) ~from_obj:succ ~to_obj:node in
    if n = 0 then retire t succ;
    Reclaim.release_rootref t.ctx rr
  end
  else begin
    let rr, node = alloc_node t ~key ~value in
    splice t ~pred ~succ ~node ~rr
  end

let delete t ~key =
  let pred, succ = locate t ~key in
  if succ = 0 || node_key t.ctx succ <> key then false
  else begin
    let after = Ctx.load t.ctx (node_next succ) in
    let n =
      if after = 0 then Refc.detach t.ctx ~ref_addr:(node_next pred) ~refed:succ
      else Refc.change t.ctx ~ref_addr:(node_next pred) ~from_obj:succ ~to_obj:after
    in
    if n = 0 then retire t succ;
    true
  end

let find t ~key =
  let _, succ = locate t ~key in
  if succ <> 0 && node_key t.ctx succ = key then
    Some (Ctx.load t.ctx (node_val_addr succ 0))
  else None

let min_binding t =
  let first = Ctx.load t.ctx (node_next (Cxl_ref.obj t.head)) in
  if first = 0 then None
  else Some (node_key t.ctx first, Ctx.load t.ctx (node_val_addr first 0))

let iter t f =
  let rec go node =
    if node <> 0 then begin
      f ~key:(node_key t.ctx node) ~value:(Ctx.load t.ctx (node_val_addr node 0));
      go (Ctx.load t.ctx (node_next node))
    end
  in
  go (Ctx.load t.ctx (node_next (Cxl_ref.obj t.head)))

let range t ~lo ~hi =
  let pred, _ = locate t ~key:lo in
  let rec go node acc =
    if node = 0 then List.rev acc
    else
      let k = node_key t.ctx node in
      if k >= hi then List.rev acc
      else
        go
          (Ctx.load t.ctx (node_next node))
          (if k >= lo then (k, Ctx.load t.ctx (node_val_addr node 0)) :: acc
           else acc)
  in
  go (Ctx.load t.ctx (node_next pred)) []

let length t =
  let n = ref 0 in
  iter t (fun ~key:_ ~value:_ -> incr n);
  !n
