let threadtest ~alloc ~free ~write ~rounds ~batch =
  let batch_arr = Array.make batch None in
  for _ = 1 to rounds do
    for i = 0 to batch - 1 do
      let h = alloc 64 in
      write h;
      batch_arr.(i) <- Some h
    done;
    for i = 0 to batch - 1 do
      match batch_arr.(i) with
      | Some h ->
          free h;
          batch_arr.(i) <- None
      | None -> assert false
    done
  done

let threadtest_ops ~rounds ~batch = rounds * batch * 2

let shbench ~alloc ~free ~write ~seed ~ops =
  let rng = Random.State.make [| seed |] in
  let ws_size = 256 in
  let ws = Array.make ws_size None in
  for _ = 1 to ops do
    let slot = Random.State.int rng ws_size in
    (match ws.(slot) with Some h -> free h | None -> ());
    let size = 64 + Random.State.int rng 337 in
    let h = alloc size in
    write h;
    ws.(slot) <- Some h
  done;
  Array.iter (function Some h -> free h | None -> ()) ws

let shbench_ops ~ops = ops * 2
