open Cxlshm
module Kv = Cxlshm_kv
module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency
module Histogram = Cxlshm_shmem.Histogram

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type churn_action = Crash_writer | Crash_reader | Leave_writer | Join_reader

let action_name = function
  | Crash_writer -> "crash-writer"
  | Crash_reader -> "crash-reader"
  | Leave_writer -> "leave-writer"
  | Join_reader -> "join-reader"

let action_of_name = function
  | "crash-writer" -> Some Crash_writer
  | "crash-reader" -> Some Crash_reader
  | "leave-writer" -> Some Leave_writer
  | "join-reader" -> Some Join_reader
  | _ -> None

type churn_event = { at_op : int; action : churn_action }

let churn_to_string evs =
  evs
  |> List.map (fun e -> Printf.sprintf "%s@%d" (action_name e.action) e.at_op)
  |> String.concat ","

let churn_of_string s =
  if String.trim s = "" then Ok []
  else
    let parse_one tok =
      match String.split_on_char '@' (String.trim tok) with
      | [ name; at ] -> (
          match (action_of_name name, int_of_string_opt at) with
          | Some action, Some at_op when at_op >= 1 -> Ok { at_op; action }
          | _ -> Error tok)
      | _ -> Error tok
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
          match parse_one tok with
          | Ok e -> go (e :: acc) rest
          | Error t ->
              Error
                (Printf.sprintf
                   "bad churn event %S (want <action>@<op>, action one of \
                    crash-writer|crash-reader|leave-writer|join-reader)"
                   t))
    in
    go [] (String.split_on_char ',' s)

type cfg = {
  keys : int;
  ops : int;
  rate_mops : float;
  writers : int;
  readers : int;
  value_words : int;
  theta : float;
  mix : Kv.Ycsb.mix;
  dist : Kv.Ycsb.dist;
  quiesce_every : int;
  hb_every : int;
  monitor_every : int;
  churn : churn_event list;
  seed : int;
  final_check : bool;
}

let default_churn ~ops =
  [
    { at_op = max 1 (ops / 4); action = Crash_writer };
    { at_op = max 2 (ops * 2 / 5); action = Crash_reader };
    { at_op = max 3 (ops * 11 / 20); action = Leave_writer };
    { at_op = max 4 (ops * 7 / 10); action = Join_reader };
  ]

let default_mix =
  { Kv.Ycsb.read = 0.90; update = 0.05; insert = 0.03; rmw = 0.02 }

let default_cfg ~keys ~ops =
  {
    keys;
    ops;
    (* below reader saturation (~0.6 µs modeled per read over 2 readers)
       so steady-state queues drain and the p99 gate is stable *)
    rate_mops = 2.0;
    writers = 4;
    readers = 2;
    value_words = 2;
    theta = 0.99;
    mix = default_mix;
    dist = Kv.Ycsb.Zipfian;
    quiesce_every = 256;
    hb_every = 100;
    monitor_every = 250;
    churn = default_churn ~ops;
    seed = 42;
    final_check = false;
  }

(* Geometry derived from the key population: records of [value_words]
   values live in power-of-two size classes; the index is one (usually
   huge) object of [buckets] embedded refs. 40% slack covers parked COW
   versions that accumulate while a crashed reader pins reclamation. *)
let geometry cfg =
  let buckets = max 64 (min (1 lsl 20) cfg.keys) in
  let page_words = 16_384 in
  let pages_per_segment = 16 in
  let seg_words = page_words * pages_per_segment in
  let record_class =
    let need = 2 (* obj header *) + 2 (* next + key *) + cfg.value_words in
    let rec up c = if c >= need then c else up (c * 2) in
    up 4
  in
  let data_words = (cfg.keys * record_class * 14 / 10) + buckets + 8_192 in
  let num_segments = (data_words / seg_words) + 12 in
  let shm_cfg =
    {
      Config.default with
      Config.max_clients = cfg.writers + cfg.readers + 8;
      num_segments;
      pages_per_segment;
      page_words;
      queue_slots = 64;
    }
  in
  (shm_cfg, buckets)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

type class_stats = {
  cls : string;
  during_churn : bool;
  count : int;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

type report = {
  r_keys : int;
  r_ops : int;
  r_seed : int;
  r_rate_mops : float;
  r_churn : string;
  completed : int;
  failed : int;
  modeled_seconds : float;
  achieved_mops : float;
  crashes : int;
  recoveries : int;
  leaves : int;
  joins : int;
  all_recovered : bool;
  recovery_passes : int;
  handoff_records : int;
  adopted_records : int;
  deferred_left : int;
  check_errors : int;
  classes : class_stats list;
}

let num_classes = 4
let class_name = function 0 -> "read" | 1 -> "update" | 2 -> "insert" | _ -> "rmw"

let class_of_op = function
  | Kv.Kv_intf.Read _ -> 0
  | Kv.Kv_intf.Update _ | Kv.Kv_intf.Delete _ -> 1
  | Kv.Kv_intf.Insert _ -> 2
  | Kv.Kv_intf.Rmw _ -> 3

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

type wstate = {
  widx : int;
  mutable wctx : Ctx.t;
  mutable wh : Kv.Cxl_kv.handle;
  mutable wstatus : [ `Alive | `Crashed | `Left ];
  mutable wbusy : float;
  mutable wops : int;
  mutable pending : (float * Kv.Kv_intf.op) list; (* newest first *)
}

type rstate = {
  mutable rctx : Ctx.t;
  mutable rh : Kv.Cxl_kv.handle;
  mutable rstatus : [ `Alive | `Crashed ];
  mutable rbusy : float;
}

type role = W of int | R of int

let validate_cfg cfg =
  if cfg.keys < 1 then invalid_arg "Serve: keys must be >= 1";
  if cfg.ops < 1 then invalid_arg "Serve: ops must be >= 1";
  if cfg.writers < 1 then invalid_arg "Serve: writers must be >= 1";
  if cfg.readers < 1 then invalid_arg "Serve: readers must be >= 1";
  if cfg.value_words < 1 then invalid_arg "Serve: value_words must be >= 1";
  if cfg.keys < cfg.writers then invalid_arg "Serve: keys must be >= writers";
  if cfg.quiesce_every < 1 then invalid_arg "Serve: quiesce_every must be >= 1";
  if cfg.hb_every < 1 || cfg.monitor_every < 1 then
    invalid_arg "Serve: hb_every and monitor_every must be >= 1";
  (* alive clients must renew their lease at least once per [lease_ttl / 2]
     monitor ticks or the monitor would condemn live load *)
  if cfg.hb_every > cfg.monitor_every * 2 then
    invalid_arg "Serve: hb_every must be <= 2 * monitor_every";
  List.iter
    (fun e ->
      if e.at_op < 1 || e.at_op > cfg.ops then
        invalid_arg
          (Printf.sprintf "Serve: churn event %s@%d outside [1, ops]"
             (action_name e.action) e.at_op))
    cfg.churn

let run cfg =
  validate_cfg cfg;
  let shm_cfg, buckets = geometry cfg in
  let arena = Shm.create ~cfg:shm_cfg () in
  let model = Latency.of_tier shm_cfg.Config.tier in
  let mean_gap_ns = 1000.0 /. cfg.rate_mops in

  (* -- population ------------------------------------------------- *)
  let creator = Shm.join arena () in
  let store, h0 =
    Kv.Cxl_kv.create creator ~buckets ~partitions:cfg.writers
      ~value_words:cfg.value_words
  in
  let writers =
    Array.init cfg.writers (fun i ->
        let ctx = if i = 0 then creator else Shm.join arena () in
        let h = if i = 0 then h0 else Kv.Cxl_kv.open_store ctx store in
        if not (Kv.Cxl_kv.claim_partition h i) then
          failwith "Serve: partition claim failed on a fresh store";
        { widx = i; wctx = ctx; wh = h; wstatus = `Alive; wbusy = 0.0;
          wops = 0; pending = [] })
  in
  (* partition -> index into [writers] of its current owner *)
  let part_owner = Array.init cfg.writers (fun i -> i) in
  let readers =
    ref
      (Array.init cfg.readers (fun _ ->
           let ctx = Shm.join arena () in
           { rctx = ctx; rh = Kv.Cxl_kv.open_store ctx store;
             rstatus = `Alive; rbusy = 0.0 }))
  in
  let mon = Shm.monitor arena () in
  let roles : (int, role) Hashtbl.t = Hashtbl.create 32 in
  Array.iter (fun w -> Hashtbl.replace roles w.wctx.Ctx.cid (W w.widx)) writers;
  Array.iteri (fun i r -> Hashtbl.replace roles r.rctx.Ctx.cid (R i)) !readers;

  let gen =
    Kv.Ycsb.create_mix ~keys:cfg.keys ~mix:cfg.mix ~dist:cfg.dist
      ~theta:cfg.theta ~seed:cfg.seed
  in
  Kv.Ycsb.load_iter gen (fun op ->
      match op with
      | Kv.Kv_intf.Insert (k, v) ->
          let w = writers.(part_owner.(Kv.Cxl_kv.partition_of_key store k)) in
          Kv.Cxl_kv.put w.wh ~key:k ~value:v
      | _ -> ());

  (* -- SLO bookkeeping -------------------------------------------- *)
  let hists = Array.init (num_classes * 2) (fun _ -> Histogram.create ()) in
  let record ~cls ~churn lat =
    Histogram.record hists.((cls * 2) + if churn then 1 else 0) lat
  in
  (* condemned-but-not-yet-recovered clients; while any exists the run is
     "during churn" and latencies land in the churn buckets *)
  let outstanding : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let soft_until = ref (-1) in
  let soft_window = cfg.monitor_every in
  let during i = Hashtbl.length outstanding > 0 || i <= !soft_until in

  let completed = ref 0 and failed = ref 0 in
  let crashes = ref 0 and recoveries = ref 0 in
  let leaves = ref 0 and joins = ref 0 in
  let handoffs = ref 0 and adopted = ref 0 in
  let recovery_passes = ref 0 in
  let reader_rr = ref 0 in

  (* -- executors ---------------------------------------------------
     Open-loop latency: an op's service cost (modeled ns from the Table 1
     cost model, measured as a Stats probe delta on the executing client)
     starts at max(arrival, the client's busy horizon); latency is
     completion - arrival, so queueing behind a dead shard counts. *)
  let exec_read r ~arrival ~churn key =
    let before = Stats.probe r.rctx.Ctx.st in
    ignore (Kv.Cxl_kv.get r.rh ~key);
    let svc = Stats.probe_ns model r.rctx.Ctx.st ~since:before in
    let fin = Float.max arrival r.rbusy +. svc in
    r.rbusy <- fin;
    incr completed;
    record ~cls:0 ~churn (fin -. arrival)
  in
  let on_writer_crash w =
    w.wstatus <- `Crashed;
    Hashtbl.replace outstanding w.wctx.Ctx.cid ();
    incr crashes;
    incr failed
  in
  let exec_write w ~arrival ~churn op =
    w.wops <- w.wops + 1;
    let before = Stats.probe w.wctx.Ctx.st in
    match
      if w.wops mod cfg.quiesce_every = 0 then Kv.Cxl_kv.quiesce w.wh;
      match op with
      | Kv.Kv_intf.Update (key, value) -> Kv.Cxl_kv.put_cow w.wh ~key ~value
      | Kv.Kv_intf.Insert (key, value) -> Kv.Cxl_kv.put w.wh ~key ~value
      | Kv.Kv_intf.Rmw (key, delta) -> ignore (Kv.Cxl_kv.rmw w.wh ~key ~delta)
      | Kv.Kv_intf.Delete key -> ignore (Kv.Cxl_kv.delete w.wh ~key)
      | Kv.Kv_intf.Read key -> ignore (Kv.Cxl_kv.get w.wh ~key)
    with
    | () ->
        let svc = Stats.probe_ns model w.wctx.Ctx.st ~since:before in
        let fin = Float.max arrival w.wbusy +. svc in
        w.wbusy <- fin;
        incr completed;
        record ~cls:(class_of_op op) ~churn (fin -. arrival)
    | exception Fault.Crashed _ -> on_writer_crash w
  in

  let pick_reader () =
    let arr = !readers in
    let n = Array.length arr in
    let rec go tries =
      if tries >= n then None
      else
        let r = arr.((!reader_rr + tries) mod n) in
        if r.rstatus = `Alive then begin
          reader_rr := (!reader_rr + tries + 1) mod n;
          Some r
        end
        else go (tries + 1)
    in
    go 0
  in
  let alive_writers () =
    Array.to_list writers |> List.filter (fun w -> w.wstatus = `Alive)
  in

  let heartbeat_all () =
    Array.iter (fun w -> if w.wstatus = `Alive then Client.heartbeat w.wctx)
      writers;
    Array.iter (fun r -> if r.rstatus = `Alive then Client.heartbeat r.rctx)
      !readers
  in

  (* -- recovery ----------------------------------------------------
     One monitor pass: tick the lease clock (suspecting / condemning
     expired clients), then, as leader, recover every condemned one. A
     recovered slot is refilled with a fresh replacement client that takes
     over the dead one's role; a replaced writer drains the requests that
     queued against its partitions during the outage, so the outage shows
     up as during-churn tail latency rather than lost data. *)
  let monitor_pass now =
    ignore (Monitor.check_once mon);
    let recovered = Monitor.recover_suspects mon in
    List.iter
      (fun (cid, _report) ->
        match Hashtbl.find_opt roles cid with
        | None -> ()
        | Some (W idx) ->
            Hashtbl.remove roles cid;
            Hashtbl.remove outstanding cid;
            let w = writers.(idx) in
            let ctx = Shm.join arena () in
            let h = Kv.Cxl_kv.open_store ctx store in
            for p = 0 to cfg.writers - 1 do
              if part_owner.(p) = idx then
                ignore (Kv.Cxl_kv.takeover_partition h p)
            done;
            (* Crash-adoption: recovery moved the dead writer's parked
               records (retire stamps intact) into the arena adoption
               journal; the replacement re-parks them so their recycling
               stays era-gated instead of being reaped blind. *)
            adopted := !adopted + Kv.Cxl_kv.adopt_recovered h;
            w.wctx <- ctx;
            w.wh <- h;
            w.wstatus <- `Alive;
            w.wbusy <- Float.max w.wbusy now;
            Hashtbl.replace roles ctx.Ctx.cid (W idx);
            incr recoveries;
            let pend = List.rev w.pending in
            w.pending <- [];
            List.iter
              (fun (arr, op) -> exec_write w ~arrival:arr ~churn:true op)
              pend
        | Some (R idx) ->
            Hashtbl.remove roles cid;
            Hashtbl.remove outstanding cid;
            let r = !readers.(idx) in
            let ctx = Shm.join arena () in
            r.rctx <- ctx;
            r.rh <- Kv.Cxl_kv.open_store ctx store;
            r.rstatus <- `Alive;
            r.rbusy <- Float.max r.rbusy now;
            Hashtbl.replace roles ctx.Ctx.cid (R idx);
            incr recoveries)
      recovered
  in

  (* -- churn events ------------------------------------------------ *)
  let fire_event ev i arrival =
    match ev.action with
    | Crash_writer -> (
        (* kill the highest-indexed live writer mid-request: arm a
           fire-on-first-crash-point fault and drive one COW update into
           its partition; the victim dies inside the allocation path *)
        match List.rev (alive_writers ()) with
        | [] -> ()
        | w :: _ ->
            w.wctx.Ctx.fault <-
              Fault.random ~seed:(cfg.seed + (31 * i)) ~probability:1.0;
            let part =
              let rec find p =
                if p >= cfg.writers then None
                else if part_owner.(p) = w.widx then Some p
                else find (p + 1)
              in
              find 0
            in
            (match part with
            | None -> w.wctx.Ctx.fault <- Fault.none
            | Some key ->
                exec_write w ~arrival ~churn:true
                  (Kv.Kv_intf.Update (key, 0xC0FE)));
            soft_until := i + soft_window)
    | Crash_reader -> (
        match pick_reader () with
        | None -> ()
        | Some r ->
            (* die mid-traversal: the era announcement stays behind and
               pins writer-side reclamation until the monitor condemns the
               slot (Hazard.min_announced ignores Failed clients) *)
            Hazard.enter r.rctx;
            r.rstatus <- `Crashed;
            Hashtbl.replace outstanding r.rctx.Ctx.cid ();
            incr crashes;
            soft_until := i + soft_window)
    | Leave_writer -> (
        match alive_writers () with
        | d :: s :: _ when d.widx <> s.widx ->
            (* planned departure: reclaim what this writer can, hand the
               still-parked records to a successor over a transfer queue
               (one send_batch, single fence), move partition ownership by
               CAS, then leave cleanly *)
            let d, s = if d.widx > s.widx then (d, s) else (s, d) in
            (* no quiesce first: a departing node does not wait for
               reader quiescence — it ships its parked records as-is *)
            let parked = Kv.Cxl_kv.deferred_count d.wh in
            let before = Stats.probe s.wctx.Ctx.st in
            if parked > 0 then begin
              let q =
                Transfer.connect d.wctx ~receiver:s.wctx.Ctx.cid
                  ~capacity:(parked + 1)
              in
              let sent = Kv.Cxl_kv.handoff_deferred d.wh q in
              (match Transfer.open_from s.wctx ~sender:d.wctx.Ctx.cid with
              | Some qr ->
                  adopted := !adopted + Kv.Cxl_kv.adopt_deferred s.wh qr ~max:sent;
                  Transfer.close qr
              | None -> ());
              Transfer.close q;
              handoffs := !handoffs + sent
            end;
            for p = 0 to cfg.writers - 1 do
              if part_owner.(p) = d.widx then begin
                ignore (Kv.Cxl_kv.takeover_partition s.wh p);
                part_owner.(p) <- s.widx
              end
            done;
            Hashtbl.remove roles d.wctx.Ctx.cid;
            Kv.Cxl_kv.close d.wh;
            Shm.leave d.wctx;
            d.wstatus <- `Left;
            incr leaves;
            let svc = Stats.probe_ns model s.wctx.Ctx.st ~since:before in
            s.wbusy <- Float.max arrival s.wbusy +. svc;
            soft_until := i + soft_window
        | _ -> () (* need two live writers for a handoff *))
    | Join_reader ->
        let ctx = Shm.join arena () in
        let r =
          { rctx = ctx; rh = Kv.Cxl_kv.open_store ctx store;
            rstatus = `Alive; rbusy = arrival }
        in
        readers := Array.append !readers [| r |];
        Hashtbl.replace roles ctx.Ctx.cid (R (Array.length !readers - 1));
        incr joins;
        soft_until := i + soft_window
  in

  (* -- main loop --------------------------------------------------- *)
  let lg = Load_gen.create ~rate_mops:cfg.rate_mops ~seed:cfg.seed in
  let churn_q =
    ref (List.stable_sort (fun a b -> compare a.at_op b.at_op) cfg.churn)
  in
  for i = 1 to cfg.ops do
    let arrival = Load_gen.next_arrival lg in
    let rec fire () =
      match !churn_q with
      | e :: rest when e.at_op <= i ->
          churn_q := rest;
          fire_event e i arrival;
          fire ()
      | _ -> ()
    in
    fire ();
    if i mod cfg.hb_every = 0 then heartbeat_all ();
    if i mod cfg.monitor_every = 0 then monitor_pass arrival;
    let op = Kv.Ycsb.next gen in
    match op with
    | Kv.Kv_intf.Read key -> (
        match pick_reader () with
        | Some r -> exec_read r ~arrival ~churn:(during i) key
        | None -> (
            (* every reader is down; shared-everything means any live
               writer can serve the read *)
            match alive_writers () with
            | w :: _ -> exec_write w ~arrival ~churn:(during i) op
            | [] -> incr failed))
    | Kv.Kv_intf.Update (key, _)
    | Kv.Kv_intf.Insert (key, _)
    | Kv.Kv_intf.Rmw (key, _)
    | Kv.Kv_intf.Delete key -> (
        let w = writers.(part_owner.(key mod cfg.writers)) in
        match w.wstatus with
        | `Alive -> exec_write w ~arrival ~churn:(during i) op
        | `Crashed -> w.pending <- (arrival, op) :: w.pending
        | `Left -> incr failed (* unreachable: ownership moved at leave *))
  done;

  (* -- drain: keep the monitor running until every crashed client has
     been condemned and recovered (the SLO clock keeps advancing) ----- *)
  let vnow = ref (Load_gen.now_ns lg) in
  let max_passes = 100 * shm_cfg.Config.lease_ttl in
  while Hashtbl.length outstanding > 0 && !recovery_passes < max_passes do
    incr recovery_passes;
    vnow := !vnow +. (float_of_int cfg.monitor_every *. mean_gap_ns);
    heartbeat_all ();
    monitor_pass !vnow
  done;
  let all_recovered = Hashtbl.length outstanding = 0 in

  (* final quiesce: with every crashed reader condemned, nothing pins *)
  Array.iter
    (fun w -> if w.wstatus = `Alive then Kv.Cxl_kv.quiesce w.wh)
    writers;
  let deferred_left =
    Array.fold_left
      (fun acc w ->
        if w.wstatus = `Alive then acc + Kv.Cxl_kv.deferred_count w.wh
        else acc)
      0 writers
  in

  let check_errors =
    if cfg.final_check then
      let v = Shm.validate arena in
      List.length v.Validate.errors
    else 0
  in

  (* -- report ------------------------------------------------------ *)
  let horizon =
    let m = ref !vnow in
    Array.iter (fun w -> if w.wbusy > !m then m := w.wbusy) writers;
    Array.iter (fun r -> if r.rbusy > !m then m := r.rbusy) !readers;
    !m
  in
  let classes =
    List.concat_map
      (fun cls ->
        List.filter_map
          (fun churn ->
            let h = hists.((cls * 2) + if churn then 1 else 0) in
            if Histogram.count h = 0 then None
            else
              Some
                {
                  cls = class_name cls;
                  during_churn = churn;
                  count = Histogram.count h;
                  mean_ns = Histogram.mean_ns h;
                  p50_ns = Histogram.p50 h;
                  p95_ns = Histogram.p95 h;
                  p99_ns = Histogram.p99 h;
                  max_ns = Histogram.max_ns h;
                })
          [ false; true ])
      [ 0; 1; 2; 3 ]
  in
  (* teardown (after validate: closing the last handle frees the store) *)
  Array.iter
    (fun w ->
      if w.wstatus = `Alive then begin
        Kv.Cxl_kv.close w.wh;
        Shm.leave w.wctx
      end)
    writers;
  Array.iter
    (fun r ->
      if r.rstatus = `Alive then begin
        Kv.Cxl_kv.close r.rh;
        Shm.leave r.rctx
      end)
    !readers;
  {
    r_keys = cfg.keys;
    r_ops = cfg.ops;
    r_seed = cfg.seed;
    r_rate_mops = cfg.rate_mops;
    r_churn = churn_to_string cfg.churn;
    completed = !completed;
    failed = !failed;
    modeled_seconds = horizon /. 1e9;
    achieved_mops =
      (if horizon > 0.0 then float_of_int !completed /. (horizon /. 1000.0)
       else 0.0);
    crashes = !crashes;
    recoveries = !recoveries;
    leaves = !leaves;
    joins = !joins;
    all_recovered;
    recovery_passes = !recovery_passes;
    handoff_records = !handoffs;
    adopted_records = !adopted;
    deferred_left;
    check_errors;
    classes;
  }

(* ------------------------------------------------------------------ *)
(* Output                                                              *)
(* ------------------------------------------------------------------ *)

let report_to_json r =
  let b = Buffer.create 1024 in
  let f = Printf.bprintf in
  f b "{\n";
  f b "  \"keys\": %d,\n" r.r_keys;
  f b "  \"ops\": %d,\n" r.r_ops;
  f b "  \"seed\": %d,\n" r.r_seed;
  f b "  \"rate_mops\": %.3f,\n" r.r_rate_mops;
  f b "  \"churn\": %S,\n" r.r_churn;
  f b "  \"completed\": %d,\n" r.completed;
  f b "  \"failed\": %d,\n" r.failed;
  f b "  \"modeled_seconds\": %.6f,\n" r.modeled_seconds;
  f b "  \"achieved_mops\": %.4f,\n" r.achieved_mops;
  f b "  \"crashes\": %d,\n" r.crashes;
  f b "  \"recoveries\": %d,\n" r.recoveries;
  f b "  \"leaves\": %d,\n" r.leaves;
  f b "  \"joins\": %d,\n" r.joins;
  f b "  \"all_recovered\": %b,\n" r.all_recovered;
  f b "  \"recovery_passes\": %d,\n" r.recovery_passes;
  f b "  \"handoff_records\": %d,\n" r.handoff_records;
  f b "  \"adopted_records\": %d,\n" r.adopted_records;
  f b "  \"deferred_left\": %d,\n" r.deferred_left;
  f b "  \"check_errors\": %d,\n" r.check_errors;
  f b "  \"classes\": [";
  List.iteri
    (fun i c ->
      if i > 0 then f b ",";
      f b "\n    { \"class\": %S, \"during_churn\": %b, \"count\": %d," c.cls
        c.during_churn c.count;
      f b " \"mean_ns\": %.1f, \"p50_ns\": %.1f, \"p95_ns\": %.1f, \
           \"p99_ns\": %.1f, \"max_ns\": %.1f }"
        c.mean_ns c.p50_ns c.p95_ns c.p99_ns c.max_ns)
    r.classes;
  f b "\n  ]\n}\n";
  Buffer.contents b

let pp_report ppf r =
  Format.fprintf ppf
    "serve: keys=%d ops=%d rate=%.1f Mops seed=%d@." r.r_keys r.r_ops
    r.r_rate_mops r.r_seed;
  Format.fprintf ppf
    "  completed=%d failed=%d achieved=%.2f Mops modeled=%.3f s@." r.completed
    r.failed r.achieved_mops r.modeled_seconds;
  Format.fprintf ppf
    "  churn: crashes=%d recoveries=%d leaves=%d joins=%d all_recovered=%b@."
    r.crashes r.recoveries r.leaves r.joins r.all_recovered;
  Format.fprintf ppf
    "  handoff=%d adopted=%d deferred_left=%d check_errors=%d@."
    r.handoff_records r.adopted_records r.deferred_left r.check_errors;
  Format.fprintf ppf "  %-8s %-6s %10s %12s %12s %12s@." "class" "churn"
    "count" "p50(ns)" "p95(ns)" "p99(ns)";
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-8s %-6s %10d %12.0f %12.0f %12.0f@." c.cls
        (if c.during_churn then "yes" else "-")
        c.count c.p50_ns c.p95_ns c.p99_ns)
    r.classes
