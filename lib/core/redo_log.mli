(** Per-client redo-log record (Fig 3, Fig 4 (c) line 8).

    Each client owns one fixed redo record in its ClientLocalState. Before
    attempting the commit CAS of a refcount transaction, the client records
    the operation, its current era, the reference address, the target
    object(s) and the reference count it read. Recovery of a failed client
    reads this record to find the "last object" ([lo]) and decide via
    Conditions 1 & 2 whether the commit happened; if it did, the idempotent
    ModifyRef tail is re-executed.

    The record is never cleared on success — like the paper's algorithm, the
    era advance makes stale records provably non-redoable. *)

type op =
  | Attach  (** increment + link (Fig 4 (c)) *)
  | Detach  (** decrement + unlink (§5.3) *)
  | Change  (** §5.4 two-phase pointer change *)
  | Locked
      (** §4.2 straw-man record: [era] holds the lock stripe, [saved_cnt]
          the {e absolute} new count, [refed2] 1 for attach / 0 for detach.
          Resumed by {!Locked_refc.recover}, ignored by {!Recovery}. *)
  | Move
      (** count-neutral reference move (epoch-batched transfer receive):
          [ref_addr] is the source word, [refed] the object, [refed2] the
          destination RootRef. No CAS — the record plus the destination
          link decide redo. *)

type t = {
  op : op;
  era : int;  (** era of the (first) ModifyRefCnt *)
  ref_addr : Cxlshm_shmem.Pptr.t;  (** the reference word ModifyRef targets *)
  refed : Cxlshm_shmem.Pptr.t;  (** object A *)
  refed2 : Cxlshm_shmem.Pptr.t;  (** object B (change only, else null) *)
  saved_cnt : int;  (** A's ref_cnt read before the CAS *)
}

val record : Ctx.t -> t -> unit
(** Write the record into the client's shared redo area (fields first, then
    the valid word, fenced). *)

val record_for : Ctx.t -> cid:int -> t -> unit
(** Recovery helper: write into a *dead* client's redo area while finishing
    its instruction stream. *)

val read : Ctx.t -> cid:int -> t option
(** Read client [cid]'s record; [None] if no valid record was ever written. *)

val clear_for : Ctx.t -> cid:int -> unit
(** Invalidate a dead client's record once its recovery fully completes, so
    a second recovery pass does not resume an already-finished transaction. *)
