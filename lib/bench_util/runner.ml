module Stats = Cxlshm_shmem.Stats
module Latency = Cxlshm_shmem.Latency

type result = { ops : int; wall_ns : float; modeled_ns : float; threads : int }

let mops r = float_of_int r.ops /. (r.modeled_ns /. 1000.0)
let wall_mops r = float_of_int r.ops /. (r.wall_ns /. 1000.0)

(* Wall-clock timing must come from CLOCK_MONOTONIC: gettimeofday is
   subject to NTP steps, which can make a latency sample negative or
   inflate a p99 by the size of the step. *)
let clock () = Int64.to_float (Monotonic_clock.now ())

let time_wall f =
  let t0 = clock () in
  let v = f () in
  (v, clock () -. t0)

let run_parallel ~threads ~ops_per_thread ~model ?serial stats_of body =
  if threads < 1 then invalid_arg "Runner.run_parallel: threads >= 1";
  let wall =
    let t0 = clock () in
    if threads = 1 then body 0
    else begin
      let domains =
        List.init threads (fun tid -> Domain.spawn (fun () -> body tid))
      in
      List.iter Domain.join domains
    end;
    clock () -. t0
  in
  let parallel_ns =
    List.fold_left
      (fun acc tid -> Float.max acc (Stats.modeled_ns model (stats_of tid)))
      0.0
      (List.init threads Fun.id)
  in
  let serial_ns =
    match serial with
    | None -> 0.0
    | Some f -> Stats.modeled_ns model (f ())
  in
  {
    ops = threads * ops_per_thread;
    wall_ns = wall;
    modeled_ns = parallel_ns +. serial_ns;
    threads;
  }
