type job = {
  name : string;
  map : bytes -> (int * int) list;
  combine : int -> int -> int;
  output_words : int;
}

(* "w<i>" tokens map back to i; anything else hashes. *)
let token_key tok =
  if String.length tok > 1 && tok.[0] = 'w' then
    match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
    | Some i -> i
    | None -> Hashtbl.hash tok
  else Hashtbl.hash tok

let wordcount ~vocab =
  let map chunk =
    let text = Bytes.to_string chunk in
    let counts = Hashtbl.create 64 in
    List.iter
      (fun tok ->
        if tok <> "" then begin
          let k = token_key tok in
          Hashtbl.replace counts k
            (1 + (try Hashtbl.find counts k with Not_found -> 0))
        end)
      (String.split_on_char ' ' text);
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  in
  {
    name = "wordcount";
    map;
    combine = ( + );
    output_words = 1 + (2 * vocab);
  }

let encode_points points =
  let b = Buffer.create 256 in
  Array.iter
    (fun p ->
      Array.iter
        (fun x ->
          (* 4-byte little-endian fixed-point coordinates *)
          for k = 0 to 3 do
            Buffer.add_char b (Char.chr ((x lsr (8 * k)) land 0xff))
          done)
        p)
    points;
  Buffer.to_bytes b

let decode_points b ~dims =
  let word i =
    let v = ref 0 in
    for k = 3 downto 0 do
      v := (!v lsl 8) lor Char.code (Bytes.get b ((i * 4) + k))
    done;
    !v
  in
  let total = Bytes.length b / 4 / dims in
  Array.init total (fun p -> Array.init dims (fun d -> word ((p * dims) + d)))

let kmeans_assign ~centroids ~dims =
  let k = Array.length centroids in
  let map chunk =
    let points = decode_points chunk ~dims in
    let sums = Array.make_matrix k (dims + 1) 0 in
    Array.iter
      (fun p ->
        let best = ref 0 and best_d = ref max_int in
        for c = 0 to k - 1 do
          let d = ref 0 in
          for i = 0 to dims - 1 do
            let dx = p.(i) - centroids.(c).(i) in
            d := !d + (dx * dx)
          done;
          if !d < !best_d then begin
            best_d := !d;
            best := c
          end
        done;
        for i = 0 to dims - 1 do
          sums.(!best).(i) <- sums.(!best).(i) + p.(i)
        done;
        sums.(!best).(dims) <- sums.(!best).(dims) + 1)
      points;
    let out = ref [] in
    for c = 0 to k - 1 do
      if sums.(c).(dims) > 0 then
        for i = 0 to dims do
          out := ((c * (dims + 1)) + i, sums.(c).(i)) :: !out
        done
    done;
    !out
  in
  {
    name = "kmeans";
    map;
    combine = ( + );
    output_words = 1 + (2 * k * (dims + 1));
  }

let kmeans_update ~k ~dims combined new_centroids =
  let sums = Array.make_matrix k (dims + 1) 0 in
  List.iter
    (fun (key, v) ->
      let c = key / (dims + 1) and i = key mod (dims + 1) in
      if c < k then sums.(c).(i) <- sums.(c).(i) + v)
    combined;
  let moved = ref false in
  for c = 0 to k - 1 do
    let n = sums.(c).(dims) in
    if n > 0 then
      for i = 0 to dims - 1 do
        let nv = sums.(c).(i) / n in
        if nv <> new_centroids.(c).(i) then begin
          new_centroids.(c).(i) <- nv;
          moved := true
        end
      done
  done;
  !moved
